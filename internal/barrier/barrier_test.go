package barrier

import (
	"errors"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/heap"
	"repro/internal/memlimit"
	"repro/internal/object"
	"repro/internal/vmaddr"
)

type world struct {
	reg    *heap.Registry
	root   *memlimit.Limit
	kernel *heap.Heap
	userA  *heap.Heap
	userB  *heap.Heap
	shared *heap.Heap
	node   *object.Class
}

func newWorld(t *testing.T, b Barrier) *world {
	t.Helper()
	space := vmaddr.NewSpace()
	reg := heap.NewRegistry(space, heap.Config{HeaderExtra: b.HeaderExtra()})
	root := memlimit.NewRoot("root", memlimit.Unlimited)
	w := &world{reg: reg, root: root}
	w.kernel = reg.NewHeap(heap.KindKernel, "kernel", root.MustChild("kernel", memlimit.Unlimited, false))
	w.userA = reg.NewHeap(heap.KindUser, "userA", root.MustChild("userA", memlimit.Unlimited, false))
	w.userB = reg.NewHeap(heap.KindUser, "userB", root.MustChild("userB", memlimit.Unlimited, false))
	w.shared = reg.NewHeap(heap.KindShared, "shared", root.MustChild("shared", memlimit.Unlimited, false))

	mod := bytecode.MustAssemble(`
.class java/lang/Object
.end
.class t/Node
.field next Lt/Node;
.end`)
	objDef, _ := mod.Class("java/lang/Object")
	objC, err := object.NewClass(objDef, nil, "t", true)
	if err != nil {
		t.Fatal(err)
	}
	nodeDef, _ := mod.Class("t/Node")
	w.node, err = object.NewClass(nodeDef, objC, "t", false)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *world) mk(t *testing.T, h *heap.Heap) *object.Object {
	t.Helper()
	o, err := h.Alloc(w.node)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func realBarriers() []Barrier {
	return []Barrier{HeapPointer, NoHeapPointer, FakeHeapPointer}
}

func TestLegalityMatrix(t *testing.T) {
	for _, b := range realBarriers() {
		t.Run(b.Name(), func(t *testing.T) {
			w := newWorld(t, b)
			var st Stats
			uA := w.mk(t, w.userA)
			uA2 := w.mk(t, w.userA)
			uB := w.mk(t, w.userB)
			k := w.mk(t, w.kernel)
			s := w.mk(t, w.shared)
			s2 := w.mk(t, w.shared)

			cases := []struct {
				name        string
				holder, ref *object.Object
				kernelMode  bool
				legal       bool
			}{
				{"user->same user", uA, uA2, false, true},
				{"user->kernel", uA, k, false, true},
				{"user->shared", uA, s, false, true},
				{"user->other user", uA, uB, false, false},
				{"shared->shared same", s, s2, false, true},
				{"shared->kernel", s, k, false, true},
				{"shared->user", s, uA, false, false},
				{"kernel->user in kernel mode", k, uA, true, true},
				{"kernel->user in user mode", k, uA, false, false},
				{"kernel->kernel in kernel mode", k, w.mk(t, w.kernel), true, true},
				{"null store", uA, nil, false, true},
			}
			for _, c := range cases {
				err := b.Write(w.reg, c.holder, c.ref, c.kernelMode, &st)
				if c.legal && err != nil {
					t.Errorf("%s: unexpected violation: %v", c.name, err)
				}
				if !c.legal {
					var v *Violation
					if !errors.As(err, &v) {
						t.Errorf("%s: err = %v, want *Violation", c.name, err)
					}
				}
			}
		})
	}
}

func TestFrozenSharedObjectImmutable(t *testing.T) {
	for _, b := range realBarriers() {
		w := newWorld(t, b)
		var st Stats
		s := w.mk(t, w.shared)
		s2 := w.mk(t, w.shared)
		// Before freeze: intra-shared-heap stores are legal.
		if err := b.Write(w.reg, s, s2, false, &st); err != nil {
			t.Fatalf("%s: pre-freeze write: %v", b.Name(), err)
		}
		w.shared.Freeze()
		// After freeze, even intra-heap and null stores are violations:
		// non-primitive fields cannot be reassigned after initialization.
		if err := b.Write(w.reg, s, s2, false, &st); err == nil {
			t.Errorf("%s: post-freeze write allowed", b.Name())
		}
		if err := b.Write(w.reg, s, nil, false, &st); err == nil {
			t.Errorf("%s: post-freeze null store allowed", b.Name())
		}
	}
}

func TestCrossRefRecorded(t *testing.T) {
	w := newWorld(t, NoHeapPointer)
	var st Stats
	u := w.mk(t, w.userA)
	k := w.mk(t, w.kernel)
	if err := NoHeapPointer.Write(w.reg, u, k, false, &st); err != nil {
		t.Fatal(err)
	}
	if w.userA.ExitCount() != 1 {
		t.Error("user->kernel store did not create an exit item")
	}
	if w.kernel.EntryCount() != 1 {
		t.Error("user->kernel store did not create an entry item")
	}
}

func TestIntraHeapNotRecorded(t *testing.T) {
	w := newWorld(t, NoHeapPointer)
	var st Stats
	a := w.mk(t, w.userA)
	b := w.mk(t, w.userA)
	if err := NoHeapPointer.Write(w.reg, a, b, false, &st); err != nil {
		t.Fatal(err)
	}
	if w.userA.ExitCount() != 0 || w.userA.EntryCount() != 0 {
		t.Error("intra-heap store created items")
	}
}

func TestStatsCount(t *testing.T) {
	w := newWorld(t, HeapPointer)
	var st Stats
	a := w.mk(t, w.userA)
	b := w.mk(t, w.userA)
	for i := 0; i < 10; i++ {
		if err := HeapPointer.Write(w.reg, a, b, false, &st); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Executed.Load(); got != 10 {
		t.Errorf("Executed = %d, want 10", got)
	}
	if got := st.Cycles.Load(); got != 10*25 {
		t.Errorf("Cycles = %d, want 250", got)
	}
}

func TestNoBarrierIsFree(t *testing.T) {
	w := newWorld(t, NoBarrier)
	var st Stats
	a := w.mk(t, w.userA)
	b := w.mk(t, w.userB)
	// No barrier: even an illegal store passes unchecked (the
	// configuration runs everything on the kernel heap, so this cannot
	// happen in practice; the baseline measures pure cost).
	if err := NoBarrier.Write(w.reg, a, b, false, &st); err != nil {
		t.Fatal(err)
	}
	if st.Executed.Load() != 0 {
		t.Error("NoBarrier counted executions")
	}
	if NoBarrier.Enabled() {
		t.Error("NoBarrier reports enabled")
	}
}

func TestBarrierCosts(t *testing.T) {
	if HeapPointer.CheckCost() != 25 {
		t.Errorf("HeapPointer cost = %d, want 25 (paper §4.1)", HeapPointer.CheckCost())
	}
	if NoHeapPointer.CheckCost() != 41 {
		t.Errorf("NoHeapPointer cost = %d, want 41 (paper §4.1)", NoHeapPointer.CheckCost())
	}
	if HeapPointer.HeaderExtra() != 4 || FakeHeapPointer.HeaderExtra() != 4 {
		t.Error("heap-pointer style barriers must pad the header by 4 bytes")
	}
	if NoHeapPointer.HeaderExtra() != 0 {
		t.Error("NoHeapPointer must not pad the header")
	}
}

func TestPageAndHeaderAgree(t *testing.T) {
	// Invariant 7 from DESIGN.md: the page table and object headers always
	// agree on an object's heap.
	w := newWorld(t, NoHeapPointer)
	for _, h := range []*heap.Heap{w.kernel, w.userA, w.shared} {
		for i := 0; i < 50; i++ {
			o := w.mk(t, h)
			if got, ok := w.reg.Space.HeapOf(o.Addr); !ok || got != o.Heap {
				t.Fatalf("heap %s object %d: page says %v/%v, header says %v", h.Name, i, got, ok, o.Heap)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, b := range All() {
		got, ok := ByName(b.Name())
		if !ok || got.Name() != b.Name() {
			t.Errorf("ByName(%q) failed", b.Name())
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Error("ByName accepted bogus")
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{HolderHeap: "a", RefHeap: "b", Reason: "r"}
	if v.Error() == "" {
		t.Error("empty violation message")
	}
}
