// Package barrier implements KaffeOS's write barriers.
//
// A write barrier is a check that happens on every pointer write to the
// heap (paper §2). Illegal cross-references — those that would prevent a
// process' memory from being reclaimed, such as a reference from one user
// heap to another — are forbidden and raise "segmentation violations".
// Legal cross-heap references create entry/exit items so that heaps remain
// independently collectable.
//
// The legality matrix follows the paper's Figure 2:
//
//   - user heap  -> same user heap: legal
//   - user heap  -> kernel heap or shared heap: legal (tracked)
//   - user heap  -> other user heap: SEGMENTATION VIOLATION
//   - shared heap-> same shared heap, before freeze: legal
//   - shared heap-> anywhere after freeze, or off-heap: VIOLATION
//     (non-primitive fields of shared objects are immutable)
//   - kernel heap-> anywhere: legal, but only in kernel mode; the kernel is
//     coded to only store user references whose lifetime matches the
//     process (that discipline is the kernel's responsibility)
//
// §4.1 of the paper measures three implementations, which differ in how
// the barrier locates the heap of the object being written:
//
//   - Heap Pointer: the heap ID sits in the object header (25 cycles, +4
//     bytes per object).
//   - No Heap Pointer: the heap is found from the page on which the object
//     lies (41 cycles, no space cost).
//   - Fake Heap Pointer: the No Heap Pointer check plus 4 bytes of unused
//     header padding, isolating the space cost of the first variant.
//
// A fourth configuration, No Write Barrier, runs everything on the kernel
// heap with no checks, and is the baseline for the "≈11% total barrier
// cost" headline.
package barrier

import (
	"fmt"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/heap"
	"repro/internal/object"
	"repro/internal/telemetry"
	"repro/internal/vmaddr"
)

// Violation is a KaffeOS segmentation violation: an attempt to create an
// illegal cross-heap reference. The execution engine converts it into a
// catchable VM error object.
type Violation struct {
	HolderHeap string
	RefHeap    string
	Reason     string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("segmentation violation: %s (holder heap %s, ref heap %s)",
		v.Reason, v.HolderHeap, v.RefHeap)
}

// Stats counts barrier executions, matching Table 1 of the paper.
type Stats struct {
	Executed   atomic.Uint64 // pointer-store barrier checks performed
	Cycles     atomic.Uint64 // simulated cycles spent in barriers
	Violations atomic.Uint64 // segmentation violations raised

	// Sink, when set, receives an EvBarrierViolation event per violation.
	// The success path never touches it, so the per-store cost stays at
	// the two counter bumps above.
	Sink telemetry.Sink

	// Faults, when set, lets the injection plane refuse stores at
	// SiteBarrierStore: the store fails with a segmentation violation even
	// though it is legal, exercising the engines' violation unwind paths
	// at arbitrary stores.
	Faults *faults.Plane
}

// violate counts and traces a segmentation violation, then returns it.
func (st *Stats) violate(v *Violation) error {
	st.Violations.Add(1)
	if st.Sink != nil {
		st.Sink.Emit(telemetry.Event{
			Kind:   telemetry.EvBarrierViolation,
			Detail: v.Reason + " (" + v.HolderHeap + " -> " + v.RefHeap + ")",
		})
	}
	return v
}

// Barrier validates and tracks reference stores.
type Barrier interface {
	// Name identifies the configuration in benchmark output.
	Name() string
	// HeaderExtra is the per-object header cost in bytes.
	HeaderExtra() int
	// CheckCost is the simulated cycles per executed barrier.
	CheckCost() uint64
	// Enabled distinguishes real barriers from the no-barrier baseline.
	Enabled() bool
	// Write validates storing ref into a reference slot of holder, given
	// whether the writing thread is in kernel mode. On success it records
	// any cross-heap reference; on failure it returns *Violation (or a
	// memlimit error if item bookkeeping cannot be charged).
	Write(reg *heap.Registry, holder, ref *object.Object, kernelMode bool, st *Stats) error
}

// heapOfFunc locates the heap ID of an object; the three real barrier
// variants differ only here and in their costs.
type heapOfFunc func(reg *heap.Registry, o *object.Object) vmaddr.HeapID

func headerHeapOf(_ *heap.Registry, o *object.Object) vmaddr.HeapID { return o.Heap }

func pageHeapOf(reg *heap.Registry, o *object.Object) vmaddr.HeapID {
	id, ok := reg.Space.HeapOf(o.Addr)
	if !ok {
		return vmaddr.NoHeap
	}
	return id
}

// checking is the shared implementation of the three real barriers.
type checking struct {
	name   string
	extra  int
	cycles uint64
	heapOf heapOfFunc
}

func (b *checking) Name() string      { return b.name }
func (b *checking) HeaderExtra() int  { return b.extra }
func (b *checking) CheckCost() uint64 { return b.cycles }
func (b *checking) Enabled() bool     { return true }

func (b *checking) Write(reg *heap.Registry, holder, ref *object.Object, kernelMode bool, st *Stats) error {
	st.Executed.Add(1)
	st.Cycles.Add(b.cycles)

	if st.Faults.Fire(faults.SiteBarrierStore) {
		return st.violate(&Violation{
			HolderHeap: heapName(reg, b.heapOf(reg, holder)),
			RefHeap:    refHeapName(reg, b.heapOf, ref),
			Reason:     "injected barrier fault",
		})
	}
	if holder.Frozen() {
		return st.violate(&Violation{
			HolderHeap: heapName(reg, b.heapOf(reg, holder)),
			RefHeap:    refHeapName(reg, b.heapOf, ref),
			Reason:     "write to reference field of frozen shared object",
		})
	}
	if ref == nil {
		return nil // clearing a slot can never create an illegal reference
	}
	hid := b.heapOf(reg, holder)
	rid := b.heapOf(reg, ref)
	if hid == rid {
		return nil
	}
	hh, ok := reg.Lookup(hid)
	if !ok {
		return st.violate(&Violation{HolderHeap: "?", RefHeap: heapName(reg, rid), Reason: "holder heap unknown"})
	}
	rh, ok := reg.Lookup(rid)
	if !ok {
		return st.violate(&Violation{HolderHeap: hh.Name, RefHeap: "?", Reason: "referenced heap unknown"})
	}

	switch hh.Kind {
	case heap.KindUser:
		switch rh.Kind {
		case heap.KindKernel, heap.KindShared:
			return hh.RecordCrossRef(ref)
		default: // another user heap
			return st.violate(&Violation{
				HolderHeap: hh.Name, RefHeap: rh.Name,
				Reason: "user heap may not reference another user heap",
			})
		}
	case heap.KindShared:
		// Unfrozen shared heaps are being populated by their creator;
		// they may reference the kernel heap (class metadata) but never a
		// user heap or another shared heap.
		if rh.Kind == heap.KindKernel {
			return hh.RecordCrossRef(ref)
		}
		return st.violate(&Violation{
			HolderHeap: hh.Name, RefHeap: rh.Name,
			Reason: "shared heap may only reference itself or the kernel heap",
		})
	case heap.KindKernel:
		if !kernelMode {
			return st.violate(&Violation{
				HolderHeap: hh.Name, RefHeap: rh.Name,
				Reason: "user-mode write to kernel object",
			})
		}
		return hh.RecordCrossRef(ref)
	}
	return st.violate(&Violation{HolderHeap: hh.Name, RefHeap: rh.Name, Reason: "unknown heap kind"})
}

func heapName(reg *heap.Registry, id vmaddr.HeapID) string {
	if h, ok := reg.Lookup(id); ok {
		return h.Name
	}
	return fmt.Sprintf("heap#%d", id)
}

func refHeapName(reg *heap.Registry, f heapOfFunc, ref *object.Object) string {
	if ref == nil {
		return "null"
	}
	return heapName(reg, f(reg, ref))
}

// none is the No Write Barrier baseline.
type none struct{}

func (none) Name() string      { return "NoWriteBarrier" }
func (none) HeaderExtra() int  { return 0 }
func (none) CheckCost() uint64 { return 0 }
func (none) Enabled() bool     { return false }
func (none) Write(*heap.Registry, *object.Object, *object.Object, bool, *Stats) error {
	return nil
}

// The four configurations measured in §4.1.
var (
	// NoBarrier executes without a write barrier; everything must run on
	// the kernel heap for that to be sound.
	NoBarrier Barrier = none{}
	// HeapPointer finds the heap ID in the object header: 25 cycles with a
	// hot cache, 4 bytes per object.
	HeapPointer Barrier = &checking{name: "HeapPointer", extra: 4, cycles: 25, heapOf: headerHeapOf}
	// NoHeapPointer finds the heap by the page the object lies on: 41
	// cycles, no per-object space cost.
	NoHeapPointer Barrier = &checking{name: "NoHeapPointer", extra: 0, cycles: 41, heapOf: pageHeapOf}
	// FakeHeapPointer measures the padding cost in isolation: the page
	// lookup check plus 4 bytes of unused padding per object.
	FakeHeapPointer Barrier = &checking{name: "FakeHeapPointer", extra: 4, cycles: 41, heapOf: pageHeapOf}
)

// ByName resolves a barrier configuration by its Name().
func ByName(name string) (Barrier, bool) {
	switch name {
	case "NoWriteBarrier", "none":
		return NoBarrier, true
	case "HeapPointer":
		return HeapPointer, true
	case "NoHeapPointer":
		return NoHeapPointer, true
	case "FakeHeapPointer":
		return FakeHeapPointer, true
	}
	return nil, false
}

// All lists the four configurations in the order Figure 3 reports them.
func All() []Barrier {
	return []Barrier{NoBarrier, HeapPointer, NoHeapPointer, FakeHeapPointer}
}
