package barrier

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/heap"
	"repro/internal/object"
)

// TestPropNoUserToUserEdges: no sequence of user-mode stores mediated by
// the write barrier can ever leave a reference from one user heap into
// another (DESIGN.md invariant 3). The test performs random stores through
// the barrier — applying only those the barrier accepts, exactly as the
// interpreter does — then audits every object of every user heap.
func TestPropNoUserToUserEdges(t *testing.T) {
	for _, b := range realBarriers() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			f := func(seed int64, ops []uint16) bool {
				rng := rand.New(rand.NewSource(seed))
				w := newWorld(t, b)
				var st Stats
				heaps := []*heap.Heap{w.userA, w.userB, w.kernel, w.shared}
				var objs [][]*object.Object
				for _, h := range heaps {
					var os []*object.Object
					for i := 0; i < 6; i++ {
						o, err := h.Alloc(w.node)
						if err != nil {
							return false
						}
						os = append(os, o)
					}
					objs = append(objs, os)
				}
				for _, op := range ops {
					hi := int(op) % 4
					ri := rng.Intn(4)
					holder := objs[hi][rng.Intn(6)]
					ref := objs[ri][rng.Intn(6)]
					kernelMode := rng.Intn(4) == 0
					if err := b.Write(w.reg, holder, ref, kernelMode, &st); err == nil {
						holder.SetRef(0, ref)
					}
				}
				// Audit: user heaps may reference themselves, the kernel,
				// or shared heaps — never the other user heap.
				for ui, h := range []*heap.Heap{w.userA, w.userB} {
					other := w.userB
					if ui == 1 {
						other = w.userA
					}
					for _, o := range objs[ui] {
						for _, ref := range o.Refs {
							if ref == nil {
								continue
							}
							if ref.Heap == other.ID {
								return false
							}
							_ = h
						}
					}
				}
				// Shared heap objects never reference user heaps.
				for _, o := range objs[3] {
					for _, ref := range o.Refs {
						if ref != nil && (ref.Heap == w.userA.ID || ref.Heap == w.userB.ID) {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPropBarrierAgreement: the three real barrier implementations agree
// on every verdict — they differ only in how they find the heap, never in
// the answer.
func TestPropBarrierAgreement(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := newWorld(t, NoHeapPointer)
		var st Stats
		heaps := []*heap.Heap{w.userA, w.userB, w.kernel, w.shared}
		var all []*object.Object
		for _, h := range heaps {
			for i := 0; i < 3; i++ {
				o, err := h.Alloc(w.node)
				if err != nil {
					return false
				}
				all = append(all, o)
			}
		}
		for range ops {
			holder := all[rng.Intn(len(all))]
			ref := all[rng.Intn(len(all))]
			kernelMode := rng.Intn(2) == 0
			e1 := HeapPointer.Write(w.reg, holder, ref, kernelMode, &st)
			e2 := NoHeapPointer.Write(w.reg, holder, ref, kernelMode, &st)
			e3 := FakeHeapPointer.Write(w.reg, holder, ref, kernelMode, &st)
			if (e1 == nil) != (e2 == nil) || (e2 == nil) != (e3 == nil) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
