package jserv

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/bytecode"
)

// This file holds the request-driven servlet programs used by the network
// serving plane (internal/serve). Unlike servletSource/memHogSource above —
// which loop forever and are driven by virtual time — these export a static
// handle method the serving plane invokes once per HTTP request, on a fresh
// green thread of the tenant's process. The request body is marshalled into
// the tenant's heap as an int array (charged to its memlimit) and passed as
// the first argument; the second argument is the tenant's configured
// per-request work, in abstract units.

// NetHandleKey is the method key every request-driven servlet exports.
const NetHandleKey = "handle([II)I"

// NetServletClass / NetHogClass / NetWarmClass / KeeperClass name the
// entry classes.
const (
	NetServletClass = "jserv/NetServlet"
	NetHogClass     = "jserv/NetHog"
	NetWarmClass    = "jserv/NetWarm"
	NetWideClass    = "jserv/NetWide"
	KeeperClass     = "jserv/Keeper"
)

// netServletSource is the well-behaved request handler: fold the request
// array into a checksum, burn the configured work units, allocate a
// response buffer on this process' heap (charged to the tenant), and
// return the checksum.
const netServletSource = `
.class jserv/NetServlet
.method handle ([II)I static
.locals 5
.stack 4
# locals: 0=request array, 1=work units, 2=i, 3=acc, 4=response
	iconst 0
	istore 3
	iconst 0
	istore 2
# fold the marshalled request into the checksum
RLOOP:	iload 2
	aload 0
	arraylength
	if_icmpge WORK
	iload 3
	aload 0
	iload 2
	iaload
	iadd
	ldc 16777215
	iand
	istore 3
	iinc 2 1
	goto RLOOP
# burn the configured compute units
WORK:	iconst 0
	istore 2
WLOOP:	iload 2
	iload 1
	if_icmpge RESP
	iload 3
	ldc 31
	imul
	iload 2
	iadd
	ldc 16777215
	iand
	istore 3
	iinc 2 1
	goto WLOOP
# build a response buffer on this heap and retire it with the reply
RESP:	ldc 64
	newarray [I
	astore 4
	aload 4
	iconst 0
	iload 3
	iastore
	iload 3
	ireturn
.end
.end`

// netHogSource is the request-driven MemHog: every request appends a
// 16 KiB array to a static vector, so sustained traffic walks the tenant
// straight into its memlimit — the allocation that crosses the line throws
// OutOfMemoryError, the uncaught throwable kills the process, and the
// serving plane's degradation path takes over.
const netHogSource = `
.class jserv/NetHog
.static keep Ljava/util/Vector;
.method handle ([II)I static
.locals 2
.stack 4
	getstatic jserv/NetHog.keep Ljava/util/Vector;
	ifnonnull HAVE
	new java/util/Vector
	dup
	invokespecial java/util/Vector.<init> ()V
	putstatic jserv/NetHog.keep Ljava/util/Vector;
HAVE:	getstatic jserv/NetHog.keep Ljava/util/Vector;
	ldc 4096
	newarray [I
	invokevirtual java/util/Vector.add (Ljava/lang/Object;)V
	aload 0
	arraylength
	ireturn
.end
.end`

// netWarmSource is the expensive-startup servlet: its <clinit> builds a
// 4096-entry lookup table by iterated mixing — hundreds of thousands of
// interpreted bytecodes before the first request can be served. It exists
// to make cold starts hurt, which is exactly what the template/fork path
// (TenantConfig.Template) is for: the warmup runs once in a zygote, is
// checkpointed, and every incarnation after that is stamped out by a heap
// copy instead of re-running the clinit. handle folds the request through
// the table, so a clone with a wrong or missing table answers wrongly —
// correctness of the fork is observable from the response.
const netWarmSource = `
.class jserv/NetWarm
.static table [I
.method <clinit> ()V static
.locals 3
.stack 4
# locals: 0=i, 1=j, 2=v
	ldc 4096
	newarray [I
	putstatic jserv/NetWarm.table [I
	iconst 0
	istore 0
ILOOP:	iload 0
	ldc 4096
	if_icmpge DONE
	iload 0
	istore 2
	iconst 0
	istore 1
JLOOP:	iload 1
	ldc 64
	if_icmpge STORE
	iload 2
	ldc 31
	imul
	iload 1
	iadd
	ldc 16777215
	iand
	istore 2
	iinc 1 1
	goto JLOOP
STORE:	getstatic jserv/NetWarm.table [I
	iload 0
	iload 2
	iastore
	iinc 0 1
	goto ILOOP
DONE:	return
.end
.method handle ([II)I static
.locals 4
.stack 5
# locals: 0=request array, 1=work units, 2=i, 3=acc
	iconst 0
	istore 3
	iconst 0
	istore 2
# fold the request through the warm table
RLOOP:	iload 2
	aload 0
	arraylength
	if_icmpge WORK
	iload 3
	getstatic jserv/NetWarm.table [I
	aload 0
	iload 2
	iaload
	ldc 4095
	iand
	iaload
	iadd
	ldc 16777215
	iand
	istore 3
	iinc 2 1
	goto RLOOP
# burn the configured compute units, still via the table
WORK:	iconst 0
	istore 2
WLOOP:	iload 2
	iload 1
	if_icmpge OUT
	iload 3
	getstatic jserv/NetWarm.table [I
	iload 2
	ldc 4095
	iand
	iaload
	iadd
	ldc 16777215
	iand
	istore 3
	iinc 2 1
	goto WLOOP
OUT:	iload 3
	ireturn
.end
.end`

// The compile-heavy servlet: NetWarm's dual. Where NetWarm makes cold
// starts expensive by running bytecode (a long <clinit> the template/fork
// path amortizes), NetWide makes them expensive by *compiling* bytecode —
// many straight-line stage methods the JIT must translate before the
// first request answers, with no clinit at all. That is the cost the
// shared code cache (internal/codecache) eliminates: the first loader
// compiles the module once into an immutable artifact, every later tenant
// attaches and serves its first request without compiling anything.
const (
	// wideStages is how many stage methods handle() chains through.
	wideStages = 96
	// wideRounds is the mix rounds per stage, 6 instructions each.
	wideRounds = 20
)

// netWideSource generates the NetWide assembly. handle([II)I folds the
// request length and work units through every stage; selftest()I drives
// the same surface without a marshalled request, for benchmarks.
func netWideSource() string {
	var b strings.Builder
	b.WriteString(".class jserv/NetWide\n")

	b.WriteString(".method handle ([II)I static\n.locals 3\n.stack 2\n")
	b.WriteString("# locals: 0=request array, 1=work units, 2=acc\n")
	b.WriteString("\taload 0\n\tarraylength\n\tiload 1\n\tiadd\n\tistore 2\n")
	for i := 0; i < wideStages; i++ {
		fmt.Fprintf(&b, "\tiload 2\n\tinvokestatic jserv/NetWide.stage%d (I)I\n\tistore 2\n", i)
	}
	b.WriteString("\tiload 2\n\tireturn\n.end\n")

	b.WriteString(".method selftest ()I static\n.locals 1\n.stack 2\n")
	b.WriteString("\ticonst 1\n\tistore 0\n")
	for i := 0; i < wideStages; i++ {
		fmt.Fprintf(&b, "\tiload 0\n\tinvokestatic jserv/NetWide.stage%d (I)I\n\tistore 0\n", i)
	}
	b.WriteString("\tiload 0\n\tireturn\n.end\n")

	for i := 0; i < wideStages; i++ {
		fmt.Fprintf(&b, ".method stage%d (I)I static\n.locals 1\n.stack 2\n\tiload 0\n", i)
		for r := 0; r < wideRounds; r++ {
			fmt.Fprintf(&b, "\tldc %d\n\timul\n\tldc %d\n\tiadd\n\tldc 16777215\n\tiand\n",
				31+2*(i%7), 1+(i+r)%13)
		}
		b.WriteString("\tireturn\n.end\n")
	}
	b.WriteString(".end\n")
	return b.String()
}

// The generated module is memoized: it is large (~12k instructions), the
// source never varies, and modules are read-only to loaders, so every
// tenant — and every process in the go benchmarks — can define from the
// same one. Assembling per incarnation would also bill module parsing to
// both arms of the codecache A/B, diluting the compile-cost signal the
// workload exists to expose.
var (
	wideOnce   sync.Once
	wideModule *bytecode.Module
)

// keeperSource is the per-tenant resident thread: it only sleeps, keeping
// the process alive between requests (a process whose last thread exits is
// reclaimed by the kernel). The serving plane spawns it as a daemon thread
// so an idle server leaves the scheduler with no runnable work.
const keeperSource = `
.class jserv/Keeper
.method main ()V static
.locals 0
.stack 1
LOOP:	ldc 1000
	invokestatic java/lang/Thread.sleep (I)V
	goto LOOP
.end
.end`

// NetServletModule returns the request-driven servlet program.
func NetServletModule() *bytecode.Module { return bytecode.MustAssemble(netServletSource) }

// NetHogModule returns the request-driven MemHog program.
func NetHogModule() *bytecode.Module { return bytecode.MustAssemble(netHogSource) }

// NetWarmModule returns the expensive-startup servlet: a <clinit> warm
// table whose construction dominates cold start, built for the
// template/fork serving path.
func NetWarmModule() *bytecode.Module { return bytecode.MustAssemble(netWarmSource) }

// NetWideModule returns the compile-heavy servlet: a wide, clinit-free
// method surface whose per-process JIT cost dominates cold start — the
// workload the shared code cache is for.
func NetWideModule() *bytecode.Module {
	wideOnce.Do(func() { wideModule = bytecode.MustAssemble(netWideSource()) })
	return wideModule
}

// KeeperModule returns the keep-alive program the serving plane loads into
// every tenant process alongside its handler.
func KeeperModule() *bytecode.Module { return bytecode.MustAssemble(keeperSource) }
