package jserv

import "repro/internal/bytecode"

// This file holds the request-driven servlet programs used by the network
// serving plane (internal/serve). Unlike servletSource/memHogSource above —
// which loop forever and are driven by virtual time — these export a static
// handle method the serving plane invokes once per HTTP request, on a fresh
// green thread of the tenant's process. The request body is marshalled into
// the tenant's heap as an int array (charged to its memlimit) and passed as
// the first argument; the second argument is the tenant's configured
// per-request work, in abstract units.

// NetHandleKey is the method key every request-driven servlet exports.
const NetHandleKey = "handle([II)I"

// NetServletClass / NetHogClass / KeeperClass name the entry classes.
const (
	NetServletClass = "jserv/NetServlet"
	NetHogClass     = "jserv/NetHog"
	KeeperClass     = "jserv/Keeper"
)

// netServletSource is the well-behaved request handler: fold the request
// array into a checksum, burn the configured work units, allocate a
// response buffer on this process' heap (charged to the tenant), and
// return the checksum.
const netServletSource = `
.class jserv/NetServlet
.method handle ([II)I static
.locals 5
.stack 4
# locals: 0=request array, 1=work units, 2=i, 3=acc, 4=response
	iconst 0
	istore 3
	iconst 0
	istore 2
# fold the marshalled request into the checksum
RLOOP:	iload 2
	aload 0
	arraylength
	if_icmpge WORK
	iload 3
	aload 0
	iload 2
	iaload
	iadd
	ldc 16777215
	iand
	istore 3
	iinc 2 1
	goto RLOOP
# burn the configured compute units
WORK:	iconst 0
	istore 2
WLOOP:	iload 2
	iload 1
	if_icmpge RESP
	iload 3
	ldc 31
	imul
	iload 2
	iadd
	ldc 16777215
	iand
	istore 3
	iinc 2 1
	goto WLOOP
# build a response buffer on this heap and retire it with the reply
RESP:	ldc 64
	newarray [I
	astore 4
	aload 4
	iconst 0
	iload 3
	iastore
	iload 3
	ireturn
.end
.end`

// netHogSource is the request-driven MemHog: every request appends a
// 16 KiB array to a static vector, so sustained traffic walks the tenant
// straight into its memlimit — the allocation that crosses the line throws
// OutOfMemoryError, the uncaught throwable kills the process, and the
// serving plane's degradation path takes over.
const netHogSource = `
.class jserv/NetHog
.static keep Ljava/util/Vector;
.method handle ([II)I static
.locals 2
.stack 4
	getstatic jserv/NetHog.keep Ljava/util/Vector;
	ifnonnull HAVE
	new java/util/Vector
	dup
	invokespecial java/util/Vector.<init> ()V
	putstatic jserv/NetHog.keep Ljava/util/Vector;
HAVE:	getstatic jserv/NetHog.keep Ljava/util/Vector;
	ldc 4096
	newarray [I
	invokevirtual java/util/Vector.add (Ljava/lang/Object;)V
	aload 0
	arraylength
	ireturn
.end
.end`

// keeperSource is the per-tenant resident thread: it only sleeps, keeping
// the process alive between requests (a process whose last thread exits is
// reclaimed by the kernel). The serving plane spawns it as a daemon thread
// so an idle server leaves the scheduler with no runnable work.
const keeperSource = `
.class jserv/Keeper
.method main ()V static
.locals 0
.stack 1
LOOP:	ldc 1000
	invokestatic java/lang/Thread.sleep (I)V
	goto LOOP
.end
.end`

// NetServletModule returns the request-driven servlet program.
func NetServletModule() *bytecode.Module { return bytecode.MustAssemble(netServletSource) }

// NetHogModule returns the request-driven MemHog program.
func NetHogModule() *bytecode.Module { return bytecode.MustAssemble(netHogSource) }

// KeeperModule returns the keep-alive program the serving plane loads into
// every tenant process alongside its handler.
func KeeperModule() *bytecode.Module { return bytecode.MustAssemble(keeperSource) }
