package jserv

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/core"
)

// servletSource is the well-behaved servlet: it loops forever handling
// requests — each request does a fixed amount of computation, allocates a
// short-lived response buffer, and bumps the handled counter.
const servletSource = `
.class jserv/Servlet
.static handled I
.method main ()V static
.locals 3
.stack 4
LOOP:
# one request: compute
	iconst 0
	istore 0
	iconst 0
	istore 1
WORK:	iload 1
	ldc 400
	if_icmpge RESP
	iload 0
	iload 1
	imul
	iload 1
	iadd
	ldc 16777215
	iand
	istore 0
	iinc 1 1
	goto WORK
# build a response and retire it
RESP:	ldc 64
	newarray [I
	astore 2
	aload 2
	iconst 0
	iload 0
	iastore
	getstatic jserv/Servlet.handled I
	iconst 1
	iadd
	putstatic jserv/Servlet.handled I
	goto LOOP
.end
.end`

// memHogSource is the paper's MemHog: "sits in a loop, repeatedly
// allocates memory, and keeps it from being garbage-collected."
const memHogSource = `
.class jserv/MemHog
.static keep Ljava/util/Vector;
.method main ()V static
.locals 0
.stack 4
	new java/util/Vector
	dup
	invokespecial java/util/Vector.<init> ()V
	putstatic jserv/MemHog.keep Ljava/util/Vector;
LOOP:	getstatic jserv/MemHog.keep Ljava/util/Vector;
	ldc 4096
	newarray [I
	invokevirtual java/util/Vector.add (Ljava/lang/Object;)V
	goto LOOP
.end
.end`

// ServletModule returns the servlet program module.
func ServletModule() *bytecode.Module { return bytecode.MustAssemble(servletSource) }

// MemHogModule returns the MemHog program module.
func MemHogModule() *bytecode.Module { return bytecode.MustAssemble(memHogSource) }

// Servlet is one supervised servlet zone (one KaffeOS process).
type Servlet struct {
	Name  string
	MemKB int
	Hog   bool

	proc *core.Process
	// handled accumulates across restarts; lastSeen is the counter value
	// at the previous poll (counters die with the process heap).
	handled  uint64
	lastSeen uint64
	restarts int
}

// Handled reports total requests answered across restarts.
func (s *Servlet) Handled() uint64 { return s.handled }

// Restarts reports how many times the supervisor restarted the servlet.
func (s *Servlet) Restarts() int { return s.restarts }

// Engine runs supervised servlets on a real KaffeOS VM — the paper's
// administrator loop: "we restarted the JVM(s) and the KaffeOS process,
// respectively, whenever it crashed because of the effects caused by
// MemHog."
type Engine struct {
	VM       *core.VM
	servlets []*Servlet
}

// NewEngine wraps a VM.
func NewEngine(vm *core.VM) *Engine {
	return &Engine{VM: vm}
}

// AddServlet registers a well-behaved servlet zone.
func (e *Engine) AddServlet(name string, memKB int) (*Servlet, error) {
	return e.add(name, memKB, false)
}

// AddMemHog registers a denial-of-service servlet zone.
func (e *Engine) AddMemHog(name string, memKB int) (*Servlet, error) {
	return e.add(name, memKB, true)
}

func (e *Engine) add(name string, memKB int, hog bool) (*Servlet, error) {
	s := &Servlet{Name: name, MemKB: memKB, Hog: hog}
	if err := e.start(s); err != nil {
		return nil, err
	}
	e.servlets = append(e.servlets, s)
	return s, nil
}

// start (re)creates the servlet's process.
func (e *Engine) start(s *Servlet) error {
	p, err := e.VM.NewProcess(s.Name, core.ProcessOptions{MemLimit: uint64(s.MemKB) << 10})
	if err != nil {
		return fmt.Errorf("jserv: start %s: %w", s.Name, err)
	}
	var module = ServletModule()
	main := "jserv/Servlet"
	if s.Hog {
		module = MemHogModule()
		main = "jserv/MemHog"
	}
	if err := p.Load(module); err != nil {
		return err
	}
	if _, err := p.Spawn(main, "main()V"); err != nil {
		return err
	}
	s.proc = p
	s.lastSeen = 0
	return nil
}

// poll accumulates counters and restarts dead servlets.
func (e *Engine) poll() error {
	for _, s := range e.servlets {
		if s.proc.State() == core.ProcRunning {
			if !s.Hog {
				if v, ok := e.counter(s); ok {
					if v >= s.lastSeen {
						s.handled += v - s.lastSeen
					}
					s.lastSeen = v
				}
			}
			e.publish(s)
			continue
		}
		// Dead (the hog OOM-ing, typically): restart, like the paper's
		// administrator concerned with availability.
		s.restarts++
		if err := e.start(s); err != nil {
			return err
		}
		e.publish(s)
	}
	return nil
}

// publish mirrors the zone's supervisor-level counters into the current
// process' telemetry scope, so `kaffeos top` and the HTTP endpoint show
// requests handled and restarts next to the kernel-maintained metrics.
func (e *Engine) publish(s *Servlet) {
	if e.VM.Tel == nil || s.proc == nil {
		return
	}
	scope := e.VM.Tel.Reg.Proc(int32(s.proc.ID))
	scope.Gauge("jserv.handled").Set(s.handled)
	scope.Gauge("jserv.restarts").Set(uint64(s.restarts))
	scope.SetMeta("jserv.zone", s.Name)
}

// ZoneRow is one supervised zone's cumulative stats for introspection.
type ZoneRow struct {
	Name     string `json:"name"`
	Pid      int32  `json:"pid"`
	Hog      bool   `json:"hog"`
	Handled  uint64 `json:"handled"`
	Restarts int    `json:"restarts"`
	State    string `json:"state"`
}

// Zones snapshots every zone's supervisor-level stats.
func (e *Engine) Zones() []ZoneRow {
	rows := make([]ZoneRow, 0, len(e.servlets))
	for _, s := range e.servlets {
		r := ZoneRow{Name: s.Name, Hog: s.Hog, Handled: s.handled, Restarts: s.restarts}
		if s.proc != nil {
			r.Pid = int32(s.proc.ID)
			r.State = s.proc.State().String()
		}
		rows = append(rows, r)
	}
	return rows
}

// counter reads the servlet's handled static.
func (e *Engine) counter(s *Servlet) (uint64, bool) {
	c, err := s.proc.Loader.Class("jserv/Servlet")
	if err != nil {
		return 0, false
	}
	f, ok := c.StaticByName("handled")
	if !ok || c.Statics == nil {
		return 0, false
	}
	return uint64(c.Statics.Prims[f.Slot]), true
}

// ServeUntil runs the VM until every well-behaved servlet has answered
// requests requests (or the virtual-time budget in milliseconds expires).
// It returns the elapsed virtual milliseconds.
func (e *Engine) ServeUntil(requests uint64, maxMillis uint64) (uint64, error) {
	start := e.VM.Sched.NowMillis()
	var pollErr error
	deadline := func() bool {
		if pollErr = e.poll(); pollErr != nil {
			return true
		}
		if maxMillis > 0 && e.VM.Sched.NowMillis()-start > maxMillis {
			return true
		}
		for _, s := range e.servlets {
			if !s.Hog && s.handled < requests {
				return false
			}
		}
		return true
	}
	if err := e.VM.RunUntil(deadline); err != nil {
		return 0, err
	}
	if pollErr != nil {
		return 0, pollErr
	}
	return e.VM.Sched.NowMillis() - start, nil
}

// Servlets lists the zones.
func (e *Engine) Servlets() []*Servlet { return e.servlets }
