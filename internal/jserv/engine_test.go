package jserv

import (
	"testing"

	"repro/internal/core"
)

func newEngineVM(t testing.TB) *core.VM {
	t.Helper()
	vm, err := core.NewVM(core.Config{Engine: core.EngineJITOpt})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestServletHandlesRequests(t *testing.T) {
	vm := newEngineVM(t)
	e := NewEngine(vm)
	s, err := e.AddServlet("zone1", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ServeUntil(50, 0); err != nil {
		t.Fatal(err)
	}
	if s.Handled() < 50 {
		t.Fatalf("handled = %d, want >= 50", s.Handled())
	}
	if vm.Sched.Now() == 0 {
		t.Error("no virtual time elapsed")
	}
	if s.Restarts() != 0 {
		t.Errorf("healthy servlet restarted %d times", s.Restarts())
	}
}

func TestMemHogIsKilledAndRestartedWithoutHarm(t *testing.T) {
	// The paper's core demonstration on the real system: a MemHog in its
	// own KaffeOS process dies by memlimit over and over, while the
	// well-behaved servlets keep answering.
	vm := newEngineVM(t)
	e := NewEngine(vm)
	var goods []*Servlet
	for i := 0; i < 3; i++ {
		s, err := e.AddServlet("zone"+string(rune('A'+i)), 4096)
		if err != nil {
			t.Fatal(err)
		}
		goods = append(goods, s)
	}
	hog, err := e.AddMemHog("hog", 512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ServeUntil(60, 0); err != nil {
		t.Fatal(err)
	}
	for _, s := range goods {
		if s.Handled() < 60 {
			t.Errorf("%s handled only %d requests", s.Name, s.Handled())
		}
	}
	if hog.Restarts() == 0 {
		t.Error("MemHog never died: memlimit not enforced")
	}
	// The kernel heap must not accumulate the hog's garbage.
	if vm.KernelHeap.Bytes() > 256<<10 {
		t.Errorf("kernel heap grew to %d bytes under repeated hog deaths", vm.KernelHeap.Bytes())
	}
}

func TestConsistentServiceUnderAttack(t *testing.T) {
	// KaffeOS's headline: service time with a MemHog stays within a small
	// factor of service time without one.
	run := func(withHog bool) uint64 {
		vm := newEngineVM(t)
		e := NewEngine(vm)
		for i := 0; i < 2; i++ {
			if _, err := e.AddServlet("z"+string(rune('0'+i)), 4096); err != nil {
				t.Fatal(err)
			}
		}
		if withHog {
			if _, err := e.AddMemHog("hog", 256); err != nil {
				t.Fatal(err)
			}
		}
		ms, err := e.ServeUntil(40, 0)
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	clean := run(false)
	attacked := run(true)
	if clean == 0 {
		t.Fatal("zero baseline")
	}
	ratio := float64(attacked) / float64(clean)
	t.Logf("virtual ms clean=%d attacked=%d ratio=%.2f", clean, attacked, ratio)
	// The hog takes a CPU share and its GC/restart cycles, but isolation
	// keeps the degradation bounded (paper: consistent performance).
	if ratio > 4 {
		t.Errorf("service degraded %.1fx under MemHog — isolation failed", ratio)
	}
}
