package jserv

import (
	"math"
	"testing"
)

func TestSimulateBaselines(t *testing.T) {
	p := DefaultParams()
	one := Simulate(Config{Mode: ModeIBM1, Servlets: 1}, p)
	if one.Seconds <= 0 || math.IsInf(one.Seconds, 0) {
		t.Fatalf("degenerate result %v", one)
	}
	// One servlet, 1000 requests at 4 ms: about 4 seconds.
	if one.Seconds < 3 || one.Seconds > 6 {
		t.Errorf("IBM/1 n=1 = %.1fs, want ~4s", one.Seconds)
	}
	k := Simulate(Config{Mode: ModeKaffeOS, Servlets: 1}, p)
	// KaffeOS is several times slower per request.
	if k.Seconds < 3*one.Seconds {
		t.Errorf("KaffeOS (%.1fs) should be several times slower than IBM (%.1fs) per servlet", k.Seconds, one.Seconds)
	}
}

func TestScalingWithoutHog(t *testing.T) {
	p := DefaultParams()
	for _, mode := range []Mode{ModeIBM1, ModeIBMn, ModeKaffeOS} {
		prev := 0.0
		for _, n := range Figure4Points() {
			out := Simulate(Config{Mode: mode, Servlets: n}, p)
			if out.Seconds < prev {
				t.Errorf("%s: time decreased from %.1f to %.1f at n=%d", mode, prev, out.Seconds, n)
			}
			prev = out.Seconds
		}
	}
}

func TestIBM1ThrashesAtScale(t *testing.T) {
	// "Starting multiple JVMs eventually causes the machine to thrash";
	// IBM/1 must degrade super-linearly past the RAM knee while KaffeOS
	// stays near-linear.
	p := DefaultParams()
	ibm80 := Simulate(Config{Mode: ModeIBM1, Servlets: 80}, p)
	ibm10 := Simulate(Config{Mode: ModeIBM1, Servlets: 10}, p)
	k80 := Simulate(Config{Mode: ModeKaffeOS, Servlets: 80}, p)
	k10 := Simulate(Config{Mode: ModeKaffeOS, Servlets: 10}, p)

	ibmGrowth := ibm80.Seconds / ibm10.Seconds
	kGrowth := k80.Seconds / k10.Seconds
	if ibm80.ThrashFactor <= 1 {
		t.Errorf("IBM/1 at 80 JVMs did not thrash (factor %.2f)", ibm80.ThrashFactor)
	}
	if ibmGrowth < 1.5*kGrowth {
		t.Errorf("IBM/1 growth (%.1fx) should exceed KaffeOS growth (%.1fx) at the thrash knee", ibmGrowth, kGrowth)
	}
	if k80.ThrashFactor > 1.01 {
		t.Errorf("KaffeOS thrashes (%.2fx) — its processes share one VM", k80.ThrashFactor)
	}
}

func TestMemHogPolicies(t *testing.T) {
	p := DefaultParams()
	for _, n := range []int{2, 10, 40} {
		kNo := Simulate(Config{Mode: ModeKaffeOS, Servlets: n}, p)
		kHog := Simulate(Config{Mode: ModeKaffeOS, Servlets: n, MemHog: true}, p)
		nNo := Simulate(Config{Mode: ModeIBMn, Servlets: n}, p)
		nHog := Simulate(Config{Mode: ModeIBMn, Servlets: n, MemHog: true}, p)

		// KaffeOS: consistent performance with or without the hog — the
		// headline property. Allow a modest premium for the hog's CPU
		// share.
		if kHog.Seconds > 3*kNo.Seconds {
			t.Errorf("n=%d: KaffeOS degrades %.1fx under MemHog", n, kHog.Seconds/kNo.Seconds)
		}
		if kHog.Crashes == 0 {
			t.Errorf("n=%d: KaffeOS hog never hit its memlimit", n)
		}
		// IBM/n: catastrophic degradation at small n.
		if n <= 10 && nHog.Seconds < 5*nNo.Seconds {
			t.Errorf("n=%d: IBM/n under MemHog only %.1fx worse — paper shows catastrophe",
				n, nHog.Seconds/nNo.Seconds)
		}
	}
}

func TestIBMnHogImprovesWithMoreServlets(t *testing.T) {
	// "The service of IBM/n,MemHog improves as the number of servlets
	// increases" — the scheduler yields to the hog less often. Normalize
	// per-request time: total seconds per (n * 1000) requests must drop.
	p := DefaultParams()
	t5 := Simulate(Config{Mode: ModeIBMn, Servlets: 5, MemHog: true}, p)
	t60 := Simulate(Config{Mode: ModeIBMn, Servlets: 60, MemHog: true}, p)
	per5 := t5.Seconds / 5
	per60 := t60.Seconds / 60
	if per60 >= per5 {
		t.Errorf("IBM/n,MemHog per-servlet time did not improve: %.2f @5 vs %.2f @60", per5, per60)
	}
}

func TestCrossoverKaffeOSBeatsIBMnUnderAttack(t *testing.T) {
	// Figure 4's most important feature: with a MemHog, IBM/n performs
	// *worse* than KaffeOS at low-to-moderate n, "despite the fact that
	// KaffeOS is several times slower for individual servlets".
	p := DefaultParams()
	for _, n := range []int{1, 2, 5, 10} {
		k := Simulate(Config{Mode: ModeKaffeOS, Servlets: n, MemHog: true}, p)
		ibmn := Simulate(Config{Mode: ModeIBMn, Servlets: n, MemHog: true}, p)
		if k.Seconds >= ibmn.Seconds {
			t.Errorf("n=%d: KaffeOS,MemHog (%.1fs) not faster than IBM/n,MemHog (%.1fs)",
				n, k.Seconds, ibmn.Seconds)
		}
	}
	// Without a hog, IBM/n is the best configuration at moderate n.
	k := Simulate(Config{Mode: ModeKaffeOS, Servlets: 10}, p)
	ibmn := Simulate(Config{Mode: ModeIBMn, Servlets: 10}, p)
	if ibmn.Seconds >= k.Seconds {
		t.Errorf("without hog IBM/n (%.1fs) should beat KaffeOS (%.1fs)", ibmn.Seconds, k.Seconds)
	}
}

func TestFigure4AllCurves(t *testing.T) {
	curves := Figure4(DefaultParams())
	if len(curves) != 6 {
		t.Fatalf("curves = %d, want 6", len(curves))
	}
	for _, name := range CurveOrder() {
		pts, ok := curves[name]
		if !ok {
			t.Fatalf("missing curve %q", name)
		}
		if len(pts) != len(Figure4Points()) {
			t.Fatalf("curve %q has %d points", name, len(pts))
		}
		for _, o := range pts {
			if o.Seconds <= 0 || math.IsNaN(o.Seconds) || math.IsInf(o.Seconds, 0) {
				t.Errorf("curve %q: bad outcome %v", name, o)
			}
		}
	}
}
