// Package jserv reproduces the paper's servlet-engine experiment
// (Figure 4): how service time for well-behaved servlets scales with the
// number of servlets, for three deployment models, with and without a
// MemHog servlet mounting a denial-of-service attack.
//
// Two layers:
//
//   - A fluid discrete-event simulation (this file) of the paper's testbed
//     — Apache+JServ on a 500 MHz Pentium III with 256 MB of RAM — that
//     regenerates all six curves of Figure 4 across 1..80 servlets. The
//     paper's hardware/software stack (IBM JDK, Linux paging behaviour)
//     cannot be run here, so the host is modelled: fixed per-JVM memory
//     footprints, paging slowdown once committed memory exceeds RAM,
//     restart costs after a crash, and CPU shared equally among runnable
//     entities. Each model's *policy* — who dies on OOM, what must restart
//     — is exactly the paper's.
//
//   - A real servlet engine running on the KaffeOS VM (engine.go): actual
//     processes with memlimits, an actual MemHog killed by its limit, and
//     actual unaffected neighbours. It demonstrates on the real system the
//     property the simulation quantifies at scale.
package jserv

import (
	"fmt"
	"math"
)

// Mode is a deployment model from Figure 4.
type Mode string

const (
	// ModeKaffeOS runs every servlet in its own KaffeOS process inside
	// one VM.
	ModeKaffeOS Mode = "KaffeOS"
	// ModeIBM1 runs one JVM per servlet ("IBM/1").
	ModeIBM1 Mode = "IBM/1"
	// ModeIBMn runs all servlets in a single JVM ("IBM/n").
	ModeIBMn Mode = "IBM/n"
)

// Params model the paper's testbed. All times in seconds, memory in MB.
type Params struct {
	RAMMB float64 // physical memory (256 MB in the paper)

	// Per-request CPU service time. KaffeOS is "several times slower for
	// individual servlets" than the IBM JVM.
	IBMServiceSec     float64
	KaffeOSServiceSec float64

	// Requests each well-behaved servlet must answer (1000 in the figure).
	RequestsPerServlet int

	// Memory model.
	JVMBaseMB        float64 // per-JVM footprint at startup (~2 MB)
	IBM1ServletMB    float64 // steady-state heap use of a dedicated JVM's servlet
	IBMnServletMB    float64 // working set per servlet inside the shared JVM
	ServletWorkMB    float64 // working set per servlet (KaffeOS processes)
	HeapCapMB        float64 // per-JVM heap limit (8 MB in the paper)
	KaffeOSVMBaseMB  float64 // the single KaffeOS VM's footprint
	KaffeOSProcMB    float64 // per-process overhead in KaffeOS
	KaffeOSProcCapMB float64 // per-process memlimit

	// MemHog allocates at this rate while scheduled on a full CPU.
	HogAllocMBPerSec float64

	// Restart costs.
	JVMRestartSec     float64 // exec + JIT warmup for one JVM
	ServletReloadSec  float64 // per servlet reloaded into a restarted JVM
	KaffeOSRestartSec float64 // restart one KaffeOS process

	// Paging: once committed memory exceeds RAM, effective CPU speed
	// divides by 1 + PagingSlope * (committed/RAM - 1)^2 — a standard
	// thrash knee. An attempt to start 100 JVMs "rendered the machine
	// inoperable".
	PagingSlope float64

	// KaffeOS's user-mode threading shows "a slight service degradation as
	// the number of processes increases"; modelled as a per-process
	// scheduling overhead fraction.
	KaffeOSSchedOverhead float64
}

// DefaultParams returns the calibration used for EXPERIMENTS.md.
func DefaultParams() Params {
	return Params{
		RAMMB:                256,
		IBMServiceSec:        0.004, // 4 ms/request on the IBM JVM
		KaffeOSServiceSec:    0.016, // 4x slower, per §4.2
		RequestsPerServlet:   1000,
		JVMBaseMB:            2,
		IBM1ServletMB:        6, // a dedicated JVM's heap grows toward its 8 MB cap
		IBMnServletMB:        0.05,
		ServletWorkMB:        0.5,
		HeapCapMB:            8,
		KaffeOSVMBaseMB:      4,
		KaffeOSProcMB:        0.5,
		KaffeOSProcCapMB:     8,
		HogAllocMBPerSec:     50, // MemHog allocates as fast as the CPU allows
		JVMRestartSec:        8,  // JVM exec + JServ redeploy + Apache reconnect
		ServletReloadSec:     0.05,
		KaffeOSRestartSec:    0.05,
		PagingSlope:          2,
		KaffeOSSchedOverhead: 0.002,
	}
}

// Config is one point of Figure 4.
type Config struct {
	Mode     Mode
	Servlets int // number of well-behaved servlets
	MemHog   bool
}

// Outcome summarizes one simulated run.
type Outcome struct {
	Config Config
	// Seconds until every well-behaved servlet answered its quota — the
	// figure's y axis.
	Seconds float64
	// Crashes counts JVM or process deaths caused by the MemHog.
	Crashes int
	// ThrashFactor is the worst paging slowdown observed.
	ThrashFactor float64
}

// state of the fluid simulation.
type simState struct {
	p   Params
	cfg Config

	now       float64
	remaining []float64 // requests left per good servlet
	idleAt    []bool

	hogFillMB    float64
	hogRestartAt float64 // hog (or its JVM) unavailable until this time
	// jvmDownUntil > now models a restarting JVM; for IBM/n it stalls
	// every servlet, for IBM/1 only the hog's own JVM matters (good
	// servlets run their own JVMs).
	jvmDownUntil float64

	crashes   int
	maxThrash float64
}

// Simulate runs the fluid model for one configuration.
func Simulate(cfg Config, p Params) Outcome {
	if cfg.Servlets < 1 {
		panic("jserv: need at least one servlet")
	}
	st := &simState{p: p, cfg: cfg, maxThrash: 1}
	st.remaining = make([]float64, cfg.Servlets)
	for i := range st.remaining {
		st.remaining[i] = float64(p.RequestsPerServlet)
	}
	const dtMax = 0.25 // max fluid step, seconds
	for st.active() > 0 {
		st.step(dtMax)
		if st.now > 1e7 {
			break // unreachable backstop
		}
	}
	return Outcome{Config: cfg, Seconds: st.now, Crashes: st.crashes, ThrashFactor: st.maxThrash}
}

// active counts good servlets with work left.
func (st *simState) active() int {
	n := 0
	for _, r := range st.remaining {
		if r > 0 {
			n++
		}
	}
	return n
}

// committedMB computes committed memory for the current mode.
func (st *simState) committedMB() float64 {
	p, cfg := st.p, st.cfg
	hog := 0.0
	if cfg.MemHog && st.now >= st.hogRestartAt {
		hog = st.hogFillMB
	}
	switch cfg.Mode {
	case ModeIBM1:
		jvms := float64(cfg.Servlets)
		mem := jvms * (p.JVMBaseMB + p.IBM1ServletMB)
		if cfg.MemHog {
			mem += p.JVMBaseMB + hog
		}
		return mem
	case ModeIBMn:
		return p.JVMBaseMB + float64(cfg.Servlets)*p.IBMnServletMB + hog
	default: // KaffeOS
		return p.KaffeOSVMBaseMB + float64(cfg.Servlets)*(p.KaffeOSProcMB+p.ServletWorkMB) + hog
	}
}

// thrash returns the current paging slowdown factor (>= 1).
func (st *simState) thrash() float64 {
	ratio := st.committedMB() / st.p.RAMMB
	if ratio <= 1 {
		return 1
	}
	f := 1 + st.p.PagingSlope*(ratio-1)*(ratio-1)
	if f > st.maxThrash {
		st.maxThrash = f
	}
	return f
}

// step advances the fluid model by at most dtMax seconds, stopping early
// at the next discrete event (a servlet finishing, a hog OOM, a restart
// completing).
func (st *simState) step(dtMax float64) {
	p, cfg := st.p, st.cfg

	// Service availability.
	jvmDown := st.now < st.jvmDownUntil
	hogAlive := cfg.MemHog && st.now >= st.hogRestartAt && !jvmDown

	good := st.active()
	runnables := 0.0
	if !((cfg.Mode == ModeIBMn) && jvmDown) {
		runnables += float64(good)
	}
	if hogAlive {
		runnables++
	}
	if runnables == 0 {
		// Everything is stalled on a restart; jump to it.
		wake := st.jvmDownUntil
		if cfg.MemHog && st.hogRestartAt > st.now && (wake <= st.now || st.hogRestartAt < wake) {
			wake = st.hogRestartAt
		}
		if wake <= st.now {
			wake = st.now + dtMax
		}
		st.now = wake
		return
	}

	thrash := st.thrash()
	share := 1.0 / runnables

	// Per-servlet request completion rate.
	service := p.IBMServiceSec
	if cfg.Mode == ModeKaffeOS {
		service = p.KaffeOSServiceSec
		service *= 1 + p.KaffeOSSchedOverhead*float64(cfg.Servlets)
	}
	rate := 0.0
	if !(cfg.Mode == ModeIBMn && jvmDown) {
		rate = share / (service * thrash)
	}

	// Candidate event horizons.
	dt := dtMax
	if rate > 0 {
		minRem := math.Inf(1)
		for _, r := range st.remaining {
			if r > 0 && r < minRem {
				minRem = r
			}
		}
		if t := minRem / rate; t < dt {
			dt = t
		}
	}
	var hogOOM float64 = math.Inf(1)
	if hogAlive {
		cap := p.HeapCapMB
		if cfg.Mode == ModeKaffeOS {
			cap = p.KaffeOSProcCapMB
		}
		if cfg.Mode == ModeIBMn {
			// The hog shares the heap with the servlets' working sets.
			cap = math.Max(0.5, p.HeapCapMB-float64(cfg.Servlets)*p.IBMnServletMB)
		}
		fillRate := p.HogAllocMBPerSec * share / thrash
		hogOOM = (cap - st.hogFillMB) / fillRate
		if hogOOM < dt {
			dt = hogOOM
		}
	}
	if jvmDown {
		if t := st.jvmDownUntil - st.now; t > 0 && t < dt {
			dt = t
		}
	}
	if cfg.MemHog && st.hogRestartAt > st.now {
		if t := st.hogRestartAt - st.now; t < dt {
			dt = t
		}
	}
	if dt <= 0 {
		dt = 1e-6
	}

	// Advance.
	if rate > 0 {
		for i := range st.remaining {
			if st.remaining[i] > 0 {
				st.remaining[i] -= rate * dt
				if st.remaining[i] < 1e-9 {
					st.remaining[i] = 0
				}
			}
		}
	}
	if hogAlive {
		fillRate := p.HogAllocMBPerSec * share / thrash
		st.hogFillMB += fillRate * dt
		cap := p.HeapCapMB
		if cfg.Mode == ModeKaffeOS {
			cap = p.KaffeOSProcCapMB
		}
		if cfg.Mode == ModeIBMn {
			cap = math.Max(0.5, p.HeapCapMB-float64(cfg.Servlets)*p.IBMnServletMB)
		}
		if st.hogFillMB >= cap-1e-9 {
			st.oom()
		}
	}
	st.now += dt
}

// oom handles the MemHog exhausting its heap — the policy difference that
// *is* Figure 4.
func (st *simState) oom() {
	p, cfg := st.p, st.cfg
	st.crashes++
	st.hogFillMB = 0
	switch cfg.Mode {
	case ModeKaffeOS:
		// The kernel kills only the hog process; its heap merges into the
		// kernel heap and is reclaimed. Other processes never notice.
		st.hogRestartAt = st.now + p.KaffeOSRestartSec
	case ModeIBM1:
		// The hog's own JVM dies and is restarted by the administrator;
		// other JVMs are isolated by the OS.
		st.hogRestartAt = st.now + p.JVMRestartSec
	case ModeIBMn:
		// The shared JVM "runs out of memory in seemingly random places";
		// the whole JVM crashes and every servlet must be reloaded.
		down := p.JVMRestartSec + float64(cfg.Servlets)*p.ServletReloadSec
		st.jvmDownUntil = st.now + down
		st.hogRestartAt = st.jvmDownUntil
	}
}

// Figure4Points is the servlet-count sweep reported in EXPERIMENTS.md.
func Figure4Points() []int { return []int{1, 2, 5, 10, 20, 40, 60, 80} }

// Figure4 computes all six curves.
func Figure4(p Params) map[string][]Outcome {
	curves := map[string][]Outcome{}
	for _, mode := range []Mode{ModeIBM1, ModeIBMn, ModeKaffeOS} {
		for _, hog := range []bool{false, true} {
			key := string(mode)
			if hog {
				key += ",MemHog"
			}
			for _, n := range Figure4Points() {
				out := Simulate(Config{Mode: mode, Servlets: n, MemHog: hog}, p)
				curves[key] = append(curves[key], out)
			}
		}
	}
	return curves
}

// CurveOrder lists the curves in the paper's legend order.
func CurveOrder() []string {
	return []string{"IBM/1", "IBM/n", "KaffeOS", "IBM/1,MemHog", "IBM/n,MemHog", "KaffeOS,MemHog"}
}

func (o Outcome) String() string {
	return fmt.Sprintf("%s n=%d hog=%v: %.1fs (%d crashes, thrash %.1fx)",
		o.Config.Mode, o.Config.Servlets, o.Config.MemHog, o.Seconds, o.Crashes, o.ThrashFactor)
}
