package shared

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/heap"
	"repro/internal/memlimit"
	"repro/internal/object"
	"repro/internal/vmaddr"
)

type world struct {
	reg    *heap.Registry
	root   *memlimit.Limit
	kernel *heap.Heap
	mgr    *Manager
	cls    *object.Class
}

func newWorld(t *testing.T) *world {
	t.Helper()
	space := vmaddr.NewSpace()
	reg := heap.NewRegistry(space, heap.Config{})
	root := memlimit.NewRoot("root", memlimit.Unlimited)
	kernel := reg.NewHeap(heap.KindKernel, "kernel", root.MustChild("kernel", memlimit.Unlimited, false))
	base := root.MustChild("shared-base", memlimit.Unlimited, false)
	mod := bytecode.MustAssemble(".class java/lang/Object\n.end\n.class t/Box\n.field v I\n.end")
	objDef, _ := mod.Class("java/lang/Object")
	objC, err := object.NewClass(objDef, nil, "t", true)
	if err != nil {
		t.Fatal(err)
	}
	boxDef, _ := mod.Class("t/Box")
	boxC, err := object.NewClass(boxDef, objC, "t", false)
	if err != nil {
		t.Fatal(err)
	}
	return &world{reg: reg, root: root, kernel: kernel, mgr: NewManager(reg, base), cls: boxC}
}

func (w *world) procLimit(t *testing.T, name string, max uint64) *memlimit.Limit {
	t.Helper()
	l, err := w.root.NewChild(name, max, false)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func buildFrozen(t *testing.T, w *world, creator *memlimit.Limit, name string) *Heap {
	t.Helper()
	sh, err := w.mgr.Create(name, creator, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	root, err := sh.H.Alloc(w.cls)
	if err != nil {
		t.Fatal(err)
	}
	sh.Root = root
	if err := w.mgr.Freeze(sh); err != nil {
		t.Fatal(err)
	}
	return sh
}

func TestLifecycle(t *testing.T) {
	w := newWorld(t)
	creator := w.procLimit(t, "creator", 1<<20)
	sh, err := w.mgr.Create("box", creator, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	// During population, the creator pays (soft child).
	root, err := sh.H.Alloc(w.cls)
	if err != nil {
		t.Fatal(err)
	}
	if creator.Use() == 0 {
		t.Error("creator not charged during population")
	}
	sh.Root = root
	if err := w.mgr.Freeze(sh); err != nil {
		t.Fatal(err)
	}
	if !sh.Frozen() || sh.Size == 0 {
		t.Fatalf("frozen=%v size=%d", sh.Frozen(), sh.Size)
	}
	// After the freeze the storage moved off the creator's limit.
	if creator.Use() != 0 {
		t.Errorf("creator still pays storage after freeze: %d", creator.Use())
	}
	// Attach charges the full size.
	if err := w.mgr.Attach(sh, "creator", creator); err != nil {
		t.Fatal(err)
	}
	if creator.Use() != sh.Size {
		t.Errorf("creator charge = %d, want %d", creator.Use(), sh.Size)
	}
}

func TestFreezeRequiresRoot(t *testing.T) {
	w := newWorld(t)
	creator := w.procLimit(t, "c", 1<<20)
	sh, err := w.mgr.Create("noroot", creator, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.mgr.Freeze(sh); err != ErrNoRoot {
		t.Fatalf("err = %v, want ErrNoRoot", err)
	}
}

func TestDoubleCreateAndFreeze(t *testing.T) {
	w := newWorld(t)
	creator := w.procLimit(t, "c", 1<<20)
	sh := buildFrozen(t, w, creator, "a")
	if _, err := w.mgr.Create("a", creator, 1<<10); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := w.mgr.Freeze(sh); err != ErrFrozen {
		t.Errorf("double freeze: %v", err)
	}
}

func TestEverySharerPaysFullSize(t *testing.T) {
	w := newWorld(t)
	creator := w.procLimit(t, "c", 1<<20)
	sh := buildFrozen(t, w, creator, "buf")
	a := w.procLimit(t, "a", 1<<20)
	bl := w.procLimit(t, "b", 1<<20)
	if err := w.mgr.Attach(sh, "a", a); err != nil {
		t.Fatal(err)
	}
	if err := w.mgr.Attach(sh, "b", bl); err != nil {
		t.Fatal(err)
	}
	// Full charge each — not 1/n — so nobody is charged asynchronously
	// when another sharer exits (§2).
	if a.Use() != sh.Size || bl.Use() != sh.Size {
		t.Errorf("charges %d/%d, want %d each", a.Use(), bl.Use(), sh.Size)
	}
	// Idempotent attach.
	if err := w.mgr.Attach(sh, "a", a); err != nil {
		t.Fatal(err)
	}
	if a.Use() != sh.Size {
		t.Error("double attach double charged")
	}
	// Detach credits; other sharers unaffected.
	w.mgr.Detach(sh, "a")
	if a.Use() != 0 || bl.Use() != sh.Size {
		t.Errorf("after detach: a=%d b=%d", a.Use(), bl.Use())
	}
}

func TestAttachFailsWhenSharerCannotPay(t *testing.T) {
	w := newWorld(t)
	creator := w.procLimit(t, "c", 1<<20)
	sh := buildFrozen(t, w, creator, "big")
	poor := w.procLimit(t, "poor", 8) // 8 bytes
	if err := w.mgr.Attach(sh, "poor", poor); err == nil {
		t.Fatal("attach succeeded beyond the sharer's limit")
	}
	if sh.SharedBy("poor") {
		t.Error("failed attach recorded a sharer")
	}
}

func TestAttachBeforeFreezeRejected(t *testing.T) {
	w := newWorld(t)
	creator := w.procLimit(t, "c", 1<<20)
	sh, _ := w.mgr.Create("raw", creator, 1<<10)
	if err := w.mgr.Attach(sh, "x", creator); err != ErrNotFrozen {
		t.Fatalf("err = %v", err)
	}
}

func TestOrphanReclaim(t *testing.T) {
	w := newWorld(t)
	creator := w.procLimit(t, "c", 1<<20)
	sh := buildFrozen(t, w, creator, "orphan")
	if err := w.mgr.Attach(sh, "c", creator); err != nil {
		t.Fatal(err)
	}
	// Still shared: not reclaimed.
	if names := w.mgr.ReclaimOrphans(w.kernel); len(names) != 0 {
		t.Fatalf("reclaimed %v with a live sharer", names)
	}
	w.mgr.Detach(sh, "c")
	names := w.mgr.ReclaimOrphans(w.kernel)
	if len(names) != 1 || names[0] != "orphan" {
		t.Fatalf("reclaimed %v", names)
	}
	if _, err := w.mgr.Lookup("orphan"); err == nil {
		t.Error("orphan still findable")
	}
	// Kernel GC then frees the merged objects.
	w.kernel.Collect(nil)
	if w.kernel.Bytes() != 0 {
		t.Errorf("kernel retains %d bytes", w.kernel.Bytes())
	}
}

func TestDetachAll(t *testing.T) {
	w := newWorld(t)
	creator := w.procLimit(t, "c", 1<<20)
	a := buildFrozen(t, w, creator, "a")
	b := buildFrozen(t, w, creator, "b")
	lim := w.procLimit(t, "p", 1<<20)
	if err := w.mgr.Attach(a, "p", lim); err != nil {
		t.Fatal(err)
	}
	if err := w.mgr.Attach(b, "p", lim); err != nil {
		t.Fatal(err)
	}
	w.mgr.DetachAll("p")
	if lim.Use() != 0 {
		t.Errorf("residual charge %d", lim.Use())
	}
	if a.SharedBy("p") || b.SharedBy("p") {
		t.Error("sharer records survived DetachAll")
	}
}

func TestUnfrozenOwnedByReclaimsAbandonedPopulation(t *testing.T) {
	w := newWorld(t)
	creator := w.procLimit(t, "dead", 1<<20)
	sh, err := w.mgr.Create("halfway", creator, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.H.Alloc(w.cls); err != nil {
		t.Fatal(err)
	}
	w.mgr.UnfrozenOwnedBy(creator, w.kernel)
	if _, err := w.mgr.Lookup("halfway"); err == nil {
		t.Error("abandoned heap still registered")
	}
	if creator.Use() != 0 {
		t.Errorf("dead creator still charged %d", creator.Use())
	}
	// Its limit can now be released (no children).
	creator.Release()
}

func TestFrozenHeapRejectsAllocation(t *testing.T) {
	w := newWorld(t)
	creator := w.procLimit(t, "c", 1<<20)
	sh := buildFrozen(t, w, creator, "sealed")
	if _, err := sh.H.Alloc(w.cls); err == nil {
		t.Error("allocation on frozen heap succeeded")
	}
	// Size never changes (invariant 6).
	if sh.Size != sh.H.Bytes() {
		t.Errorf("size %d != live bytes %d", sh.Size, sh.H.Bytes())
	}
}

func TestHeapsSorted(t *testing.T) {
	w := newWorld(t)
	creator := w.procLimit(t, "c", 1<<20)
	buildFrozen(t, w, creator, "zz")
	buildFrozen(t, w, creator, "aa")
	hs := w.mgr.Heaps()
	if len(hs) != 2 || hs[0].Name != "aa" || hs[1].Name != "zz" {
		t.Errorf("heaps order: %v, %v", hs[0].Name, hs[1].Name)
	}
}
