// Package shared implements KaffeOS shared heaps — the direct-sharing
// mechanism of the paper (§2, "Direct sharing between processes").
//
// A shared heap has a strict lifecycle: a creator process creates it (the
// heap's memlimit is a soft child of the creator's, so it cannot grow past
// what the creator can pay), populates it with objects, then freezes it.
// After the freeze its size is fixed forever, and the reference fields of
// its objects are immutable (enforced by the write barrier), so one process
// can never use a shared object to keep another process' objects alive.
//
// Every sharer is charged the *full* size of the heap while holding it
// (not 1/n), so no process is ever charged asynchronously when another
// sharer exits. When a sharer's collector finds no remaining references
// into the heap, the size is credited back; when the last sharer drops it,
// the heap is orphaned and the kernel collector merges it into the kernel
// heap at the start of its next cycle.
package shared

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/heap"
	"repro/internal/memlimit"
	"repro/internal/object"
	"repro/internal/telemetry"
)

// Errors.
var (
	ErrExists    = errors.New("shared: heap name already in use")
	ErrNotFound  = errors.New("shared: no such shared heap")
	ErrNotFrozen = errors.New("shared: heap is not frozen yet")
	ErrFrozen    = errors.New("shared: heap is already frozen")
	ErrNoRoot    = errors.New("shared: heap has no root object")
)

// Heap is one shared heap plus its sharing bookkeeping.
type Heap struct {
	Name string
	H    *heap.Heap
	// Root is the object sharers obtain from Lookup; it must live on H.
	Root *object.Object
	// Size is the frozen size in bytes; every sharer is charged this much.
	Size uint64

	frozen      bool
	createLimit *memlimit.Limit // soft child of the creator during population
	sharers     map[any]*memlimit.Limit
}

// Frozen reports whether the heap has been frozen.
func (s *Heap) Frozen() bool { return s.frozen }

// Sharers reports the number of processes currently charged for the heap.
func (s *Heap) Sharers() int { return len(s.sharers) }

// SharedBy reports whether who is currently attached.
func (s *Heap) SharedBy(who any) bool {
	_, ok := s.sharers[who]
	return ok
}

// Manager tracks every shared heap of one VM. The shared namespace is a
// global resource (the paper notes this makes it harder to account for
// precisely); names are charged nothing, contents are charged fully.
type Manager struct {
	// Telemetry, when set, receives shared-heap lifecycle events
	// (create/freeze/attach/detach). Set once at VM construction, before
	// any process runs.
	Telemetry telemetry.Sink

	mu    sync.Mutex
	reg   *heap.Registry
	base  *memlimit.Limit // accounting home for frozen shared heaps
	heaps map[string]*Heap
}

// emit forwards a shared-heap lifecycle event; who (a sharer handle) is
// mapped to a pid when it implements telemetry.Pidded.
func (m *Manager) emit(k telemetry.Kind, who any, a uint64, name string) {
	if m.Telemetry != nil {
		m.Telemetry.Emit(telemetry.Event{Kind: k, Pid: telemetry.PidOf(who), A: a, Detail: name})
	}
}

// NewManager creates a manager; base is the memlimit that owns frozen
// shared-heap storage (typically a child of the VM root).
func NewManager(reg *heap.Registry, base *memlimit.Limit) *Manager {
	return &Manager{reg: reg, base: base, heaps: make(map[string]*Heap)}
}

// Create makes a new, unfrozen shared heap. creatorLimit is the creator
// process' memlimit; max bounds the heap's size during population. The
// returned heap is ready to receive allocations (the VM layer points the
// creating thread's allocation override at it).
func (m *Manager) Create(name string, creatorLimit *memlimit.Limit, max uint64) (*Heap, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.heaps[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	// "Those heaps are initially associated with a soft memlimit that is a
	// child of the current process heap's memlimit" (§2).
	lim, err := creatorLimit.NewChild("shared:"+name, max, false)
	if err != nil {
		return nil, err
	}
	sh := &Heap{
		Name:        name,
		H:           m.reg.NewHeap(heap.KindShared, "shared:"+name, lim),
		createLimit: lim,
		sharers:     make(map[any]*memlimit.Limit),
	}
	m.heaps[name] = sh
	m.emit(telemetry.EvSharedCreate, nil, max, name)
	return sh, nil
}

// Freeze seals the heap: no further allocation, reference fields become
// immutable, the size is fixed, and the storage accounting moves from the
// creator to the manager's base limit. The creator must then Attach itself
// (it is the first sharer and keeps paying while it holds the heap).
func (m *Manager) Freeze(sh *Heap) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if sh.frozen {
		return ErrFrozen
	}
	if sh.Root == nil {
		return ErrNoRoot
	}
	sh.H.Freeze()
	sh.Size = sh.H.Bytes()
	if err := sh.H.RetargetLimit(m.base); err != nil {
		return err
	}
	sh.createLimit.Release()
	sh.createLimit = nil
	sh.frozen = true
	m.emit(telemetry.EvSharedFreeze, nil, sh.Size, sh.Name)
	return nil
}

// Lookup finds a frozen shared heap by name.
func (m *Manager) Lookup(name string) (*Heap, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sh, ok := m.heaps[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return sh, nil
}

// Attach charges who (through limit) the full size of the heap. Attaching
// twice is idempotent. The heap must be frozen.
func (m *Manager) Attach(sh *Heap, who any, limit *memlimit.Limit) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !sh.frozen {
		return ErrNotFrozen
	}
	if _, dup := sh.sharers[who]; dup {
		return nil
	}
	if err := limit.Debit(sh.Size); err != nil {
		return err
	}
	sh.sharers[who] = limit
	m.emit(telemetry.EvSharedAttach, who, sh.Size, sh.Name)
	return nil
}

// Detach credits who's charge back. Detaching a non-sharer is a no-op.
func (m *Manager) Detach(sh *Heap, who any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if lim, ok := sh.sharers[who]; ok {
		lim.Credit(sh.Size)
		delete(sh.sharers, who)
		m.emit(telemetry.EvSharedDetach, who, sh.Size, sh.Name)
	}
}

// DetachAll removes who from every shared heap (process termination).
func (m *Manager) DetachAll(who any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, sh := range m.heaps {
		if lim, ok := sh.sharers[who]; ok {
			lim.Credit(sh.Size)
			delete(sh.sharers, who)
			m.emit(telemetry.EvSharedDetach, who, sh.Size, sh.Name)
		}
	}
}

// Heaps lists all shared heaps, sorted by name.
func (m *Manager) Heaps() []*Heap {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Heap, 0, len(m.heaps))
	for _, sh := range m.heaps {
		out = append(out, sh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ChargeInfo is a point-in-time copy of one shared heap's charge state,
// captured by Snapshot for the invariant auditor.
type ChargeInfo struct {
	Name   string
	Size   uint64
	Frozen bool
	Heap   *heap.Heap
	// Sharers are the memlimits currently charged Size each.
	Sharers []*memlimit.Limit
	// CreateLimit is the population-phase soft limit (nil once frozen).
	CreateLimit *memlimit.Limit
}

// Snapshot invokes fn with the charge table while holding the manager lock,
// so no attach, detach, create, or freeze can run while fn captures the rest
// of the world. The established lock order is Manager.mu → heap locks →
// memlimit tree, so fn may snapshot heaps and limits.
func (m *Manager) Snapshot(fn func([]ChargeInfo)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	infos := make([]ChargeInfo, 0, len(m.heaps))
	for _, sh := range m.heaps {
		ci := ChargeInfo{
			Name:        sh.Name,
			Size:        sh.Size,
			Frozen:      sh.frozen,
			Heap:        sh.H,
			CreateLimit: sh.createLimit,
		}
		for _, lim := range sh.sharers {
			ci.Sharers = append(ci.Sharers, lim)
		}
		infos = append(infos, ci)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	fn(infos)
}

// ReclaimOrphans merges every orphaned shared heap (frozen, zero sharers)
// into the kernel heap; the kernel collector then reclaims the memory.
// "The kernel garbage collector checks for orphaned shared heaps at the
// beginning of each GC cycle and merges them into the kernel heap" (§2).
// It returns the names reclaimed.
func (m *Manager) ReclaimOrphans(kernel *heap.Heap) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for name, sh := range m.heaps {
		if !sh.frozen || len(sh.sharers) > 0 {
			continue
		}
		if err := sh.H.MergeInto(kernel); err == nil {
			names = append(names, name)
			delete(m.heaps, name)
		}
	}
	sort.Strings(names)
	return names
}

// UnfrozenOwnedBy removes unfrozen heaps created by a process that died
// mid-population: the heap merges into the kernel heap and the name frees.
func (m *Manager) UnfrozenOwnedBy(creatorLimit *memlimit.Limit, kernel *heap.Heap) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, sh := range m.heaps {
		if sh.frozen || sh.createLimit == nil {
			continue
		}
		if sh.createLimit.Parent() == creatorLimit {
			if err := sh.H.MergeInto(kernel); err == nil {
				sh.createLimit.Release()
				delete(m.heaps, name)
			}
		}
	}
}
