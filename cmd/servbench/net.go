package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// routeStats aggregates the client side of one route's traffic. Counters
// and the latency histogram are atomic: all client goroutines share them.
type routeStats struct {
	Route    string `json:"route"`
	Sent     uint64 `json:"sent"`
	OK       uint64 `json:"ok"`
	Shed     uint64 `json:"shed"`
	Errors   uint64 `json:"errors"`
	P50Ns    uint64 `json:"p50_ns"`
	P90Ns    uint64 `json:"p90_ns"`
	P99Ns    uint64 `json:"p99_ns"`
	sent     atomic.Uint64
	ok       atomic.Uint64
	shed     atomic.Uint64
	errs     atomic.Uint64
	lat      telemetry.Histogram
}

// netReport is the -json artifact: self-describing (host shape embedded)
// and comparable across runs.
type netReport struct {
	Host       telemetry.HostInfo `json:"host"`
	Target     string             `json:"target"`
	SelfHosted bool               `json:"self_hosted"`
	Clients    int                `json:"clients"`
	Requests   uint64             `json:"requests"`
	BodyBytes  int                `json:"body_bytes"`
	ElapsedMS  int64              `json:"elapsed_ms"`
	Throughput float64            `json:"requests_per_sec"`
	Routes     []*routeStats      `json:"routes"`
	Server     []serve.TenantRow  `json:"server,omitempty"`
}

// netBench drives real HTTP load at a serving plane: -target aims at an
// already-running server, otherwise a server is spun up in-process (one
// KaffeOS process per route) and load is generated against its socket.
func netBench(target, routeSpec string, clients int, requests uint64, bodyBytes int, jsonPath string) error {
	tenants, err := serve.ParseRoutes(routeSpec)
	if err != nil {
		return err
	}

	var (
		srv  *serve.Server
		vm   *core.VM
		base string
	)
	if target != "" {
		base = strings.TrimSuffix(target, "/")
	} else {
		vm, err = core.NewVM(core.Config{Engine: core.EngineJITOpt})
		if err != nil {
			return err
		}
		srv, err = serve.New(vm, serve.Config{}, tenants)
		if err != nil {
			return err
		}
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return err
		}
		base = "http://" + addr
		fmt.Fprintf(os.Stderr, "servbench: self-hosted serving plane on %s (%d tenants)\n", base, len(tenants))
	}

	stats := make([]*routeStats, len(tenants))
	for i, tc := range tenants {
		stats[i] = &routeStats{Route: tc.Route}
	}
	body := strings.Repeat("x", bodyBytes)

	start := time.Now()
	var next atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 60 * time.Second}
			for {
				i := next.Add(1) - 1
				if i >= requests {
					return
				}
				st := stats[int(i)%len(stats)]
				st.sent.Add(1)
				t0 := time.Now()
				resp, err := client.Post(base+st.Route, "text/plain", strings.NewReader(body))
				if err != nil {
					st.errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				st.lat.Observe(uint64(time.Since(t0).Nanoseconds()))
				switch {
				case resp.StatusCode == http.StatusOK:
					st.ok.Add(1)
				case resp.StatusCode == http.StatusServiceUnavailable:
					st.shed.Add(1)
				default:
					st.errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := netReport{
		Host:       telemetry.Host(),
		Target:     base,
		SelfHosted: srv != nil,
		Clients:    clients,
		Requests:   requests,
		BodyBytes:  bodyBytes,
		ElapsedMS:  elapsed.Milliseconds(),
		Throughput: float64(requests) / elapsed.Seconds(),
		Routes:     stats,
	}
	for _, st := range stats {
		st.Sent, st.OK, st.Shed, st.Errors = st.sent.Load(), st.ok.Load(), st.shed.Load(), st.errs.Load()
		st.P50Ns, st.P90Ns, st.P99Ns = st.lat.Quantile(0.5), st.lat.Quantile(0.9), st.lat.Quantile(0.99)
	}
	if srv != nil {
		rep.Server = srv.Rows()
		if err := srv.Close(); err != nil {
			return err
		}
		if audit := vm.Audit(true); !audit.OK() {
			return fmt.Errorf("post-run audit failed:\n%s", audit)
		}
	}

	fmt.Printf("net: %d requests, %d clients, %d-byte bodies against %s\n", requests, clients, bodyBytes, base)
	fmt.Printf("  %.0f req/s over %v (host: %d cores, GOMAXPROCS %d)\n",
		rep.Throughput, elapsed.Round(time.Millisecond), rep.Host.Cores, rep.Host.GOMAXPROCS)
	fmt.Printf("  %-16s %8s %8s %8s %8s %10s %10s %10s\n",
		"route", "sent", "ok", "shed", "errors", "p50", "p90", "p99")
	for _, st := range stats {
		fmt.Printf("  %-16s %8d %8d %8d %8d %9dus %9dus %9dus\n",
			st.Route, st.Sent, st.OK, st.Shed, st.Errors,
			st.P50Ns/1000, st.P90Ns/1000, st.P99Ns/1000)
	}
	for _, row := range rep.Server {
		if row.Restarts > 0 {
			fmt.Printf("  server: %s (%s) died and was restarted %d times; neighbours unaffected\n",
				row.Route, row.Role, row.Restarts)
		}
	}

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "servbench: wrote %s\n", jsonPath)
	}
	return nil
}
