package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// routeStats aggregates the client side of one route's traffic. Counters
// and the latency histogram are atomic: all client goroutines share them.
type routeStats struct {
	Route  string `json:"route"`
	Sent   uint64 `json:"sent"`
	OK     uint64 `json:"ok"`
	Shed   uint64 `json:"shed"`
	Errors uint64 `json:"errors"`
	// Response-class breakdown: every response the clients saw, by status
	// (Transport counts requests that died before any status arrived), so
	// a degradation run's artifact says exactly how it degraded.
	Status200 uint64 `json:"status_200"`
	Status502 uint64 `json:"status_502"`
	Status503 uint64 `json:"status_503"`
	Transport uint64 `json:"transport_errors"`
	P50Ns     uint64 `json:"p50_ns"`
	P90Ns     uint64 `json:"p90_ns"`
	P99Ns     uint64 `json:"p99_ns"`
	sent      atomic.Uint64
	c200      atomic.Uint64
	c502      atomic.Uint64
	c503      atomic.Uint64
	cOther    atomic.Uint64
	transport atomic.Uint64
	lat       telemetry.Histogram
}

// phaseQuantiles summarizes one span phase across a route's requests
// (exact quantiles — the whole span set is in memory).
type phaseQuantiles struct {
	P50  int64 `json:"p50"`
	P90  int64 `json:"p90"`
	P99  int64 `json:"p99"`
	Max  int64 `json:"max"`
	Mean int64 `json:"mean"`
}

func quantize(vals []int64) phaseQuantiles {
	if len(vals) == 0 {
		return phaseQuantiles{}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	q := func(p float64) int64 { return vals[int(p*float64(len(vals)-1))] }
	var sum int64
	for _, v := range vals {
		sum += v
	}
	return phaseQuantiles{P50: q(0.50), P90: q(0.90), P99: q(0.99),
		Max: vals[len(vals)-1], Mean: sum / int64(len(vals))}
}

// routePhases is one route's server-side cost decomposition, computed
// from the span recorder after a self-hosted run.
type routePhases struct {
	Route      string         `json:"route"`
	Spans      int            `json:"spans"`
	QueueNs    phaseQuantiles `json:"queue_ns"`
	MarshalNs  phaseQuantiles `json:"marshal_ns"`
	ExecCycles phaseQuantiles `json:"exec_cycles"`
	GCCycles   phaseQuantiles `json:"gc_cycles"`
	TotalNs    phaseQuantiles `json:"total_ns"`
}

// phasesFromSpans groups recorded spans by route and summarizes each
// phase of the request cost ledger.
func phasesFromSpans(spans []telemetry.Span) []routePhases {
	byRoute := make(map[string][]telemetry.Span)
	var order []string
	for _, sp := range spans {
		if _, seen := byRoute[sp.Route]; !seen {
			order = append(order, sp.Route)
		}
		byRoute[sp.Route] = append(byRoute[sp.Route], sp)
	}
	sort.Strings(order)
	out := make([]routePhases, 0, len(order))
	for _, route := range order {
		group := byRoute[route]
		collect := func(get func(telemetry.Span) int64) phaseQuantiles {
			vals := make([]int64, len(group))
			for i, sp := range group {
				vals[i] = get(sp)
			}
			return quantize(vals)
		}
		out = append(out, routePhases{
			Route:      route,
			Spans:      len(group),
			QueueNs:    collect(func(sp telemetry.Span) int64 { return sp.QueueNs }),
			MarshalNs:  collect(func(sp telemetry.Span) int64 { return sp.MarshalNs }),
			ExecCycles: collect(func(sp telemetry.Span) int64 { return int64(sp.ExecCycles) }),
			GCCycles:   collect(func(sp telemetry.Span) int64 { return int64(sp.GCCycles) }),
			TotalNs:    collect(func(sp telemetry.Span) int64 { return sp.TotalNs }),
		})
	}
	return out
}

// shardReport is one engine shard's server-side summary in the -json
// artifact: kernel-scope serving counters plus the shard VM's virtual
// clock, so a sharded run shows how work spread across engines.
type shardReport struct {
	Shard    int    `json:"shard"`
	Tenants  int    `json:"tenants"`
	Requests uint64 `json:"requests"`
	OK       uint64 `json:"ok"`
	Shed     uint64 `json:"shed"`
	Errors   uint64 `json:"errors"`
	Cycles   uint64 `json:"cycles"`
}

// netReport is the -json artifact: self-describing (host shape embedded)
// and comparable across runs.
type netReport struct {
	Host       telemetry.HostInfo `json:"host"`
	Target     string             `json:"target"`
	SelfHosted bool               `json:"self_hosted"`
	Shards     int                `json:"shards,omitempty"`
	Clients    int                `json:"clients"`
	Requests   uint64             `json:"requests"`
	BodyBytes  int                `json:"body_bytes"`
	ElapsedMS  int64              `json:"elapsed_ms"`
	Throughput float64            `json:"requests_per_sec"`
	Routes     []*routeStats      `json:"routes"`
	// Server-side totals (self-hosted runs): sheds and restarts as the
	// serving plane counted them, so the artifact is self-describing even
	// when the client side saw only latencies.
	ServerSheds    uint64            `json:"server_sheds,omitempty"`
	ServerRestarts uint64            `json:"server_restarts,omitempty"`
	Phases         []routePhases     `json:"phases,omitempty"`
	SpanDropped    uint64            `json:"span_dropped,omitempty"`
	Server         []serve.TenantRow `json:"server,omitempty"`
	PerShard       []shardReport     `json:"per_shard,omitempty"`
}

// netBench drives real HTTP load at a serving plane: -target aims at an
// already-running server, otherwise a server is spun up in-process (one
// KaffeOS process per route, shards engine shards) and load is generated
// against its socket.
func netBench(target, routeSpec string, clients int, requests uint64, bodyBytes, shards int, jsonPath string) error {
	tenants, err := serve.ParseRoutes(routeSpec)
	if err != nil {
		return err
	}

	var (
		srv  *serve.Server
		base string
	)
	if target != "" {
		base = strings.TrimSuffix(target, "/")
	} else {
		srv, err = serve.NewSharded(
			core.Config{Engine: core.EngineJITOpt},
			serve.Config{Shards: shards, Place: serve.LeastLoaded},
			tenants)
		if err != nil {
			return err
		}
		// Self-hosted runs record spans so the artifact carries the
		// server-side phase breakdown of every request.
		for _, vm := range srv.VMs() {
			vm.Tel.Spans.SetEnabled(true)
		}
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return err
		}
		base = "http://" + addr
		fmt.Fprintf(os.Stderr, "servbench: self-hosted serving plane on %s (%d tenants, %d shards)\n",
			base, len(tenants), srv.Shards())
	}

	stats := make([]*routeStats, len(tenants))
	for i, tc := range tenants {
		stats[i] = &routeStats{Route: tc.Route}
	}
	body := strings.Repeat("x", bodyBytes)

	start := time.Now()
	var next atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 60 * time.Second}
			for {
				i := next.Add(1) - 1
				if i >= requests {
					return
				}
				st := stats[int(i)%len(stats)]
				st.sent.Add(1)
				t0 := time.Now()
				resp, err := client.Post(base+st.Route, "text/plain", strings.NewReader(body))
				if err != nil {
					st.transport.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				st.lat.Observe(uint64(time.Since(t0).Nanoseconds()))
				switch resp.StatusCode {
				case http.StatusOK:
					st.c200.Add(1)
				case http.StatusServiceUnavailable:
					st.c503.Add(1)
				case http.StatusBadGateway:
					st.c502.Add(1)
				default:
					st.cOther.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := netReport{
		Host:       telemetry.Host(),
		Target:     base,
		SelfHosted: srv != nil,
		Clients:    clients,
		Requests:   requests,
		BodyBytes:  bodyBytes,
		ElapsedMS:  elapsed.Milliseconds(),
		Throughput: float64(requests) / elapsed.Seconds(),
		Routes:     stats,
	}
	for _, st := range stats {
		st.Sent = st.sent.Load()
		st.Status200 = st.c200.Load()
		st.Status502 = st.c502.Load()
		st.Status503 = st.c503.Load()
		st.Transport = st.transport.Load()
		st.OK = st.Status200
		st.Shed = st.Status503
		st.Errors = st.Status502 + st.cOther.Load() + st.Transport
		st.P50Ns, st.P90Ns, st.P99Ns = st.lat.Quantile(0.5), st.lat.Quantile(0.9), st.lat.Quantile(0.99)
	}
	if srv != nil {
		rep.Shards = srv.Shards()
		rep.Server = srv.Rows()
		for _, row := range rep.Server {
			rep.ServerSheds += row.Shed
			rep.ServerRestarts += row.Restarts
		}
		// Merge every shard recorder's spans into one breakdown, and keep a
		// per-shard server-side summary (kernel counters + virtual clock).
		var spans []telemetry.Span
		loads := srv.Loads()
		for i, vm := range srv.VMs() {
			spans = append(spans, vm.Tel.Spans.Snapshot()...)
			rep.SpanDropped += vm.Tel.Spans.Dropped()
			k := vm.Tel.Reg.Kernel()
			rep.PerShard = append(rep.PerShard, shardReport{
				Shard:    i,
				Tenants:  loads[i].Tenants,
				Requests: k.Counter(telemetry.MServeRequests).Value(),
				OK:       k.Counter(telemetry.MServeOK).Value(),
				Shed:     k.Counter(telemetry.MServeShed).Value(),
				Errors:   k.Counter(telemetry.MServeErrors).Value(),
				Cycles:   loads[i].Cycles,
			})
		}
		rep.Phases = phasesFromSpans(spans)
		if err := srv.Close(); err != nil {
			return err
		}
		for i, vm := range srv.VMs() {
			if audit := vm.Audit(true); !audit.OK() {
				return fmt.Errorf("post-run audit failed on shard %d:\n%s", i, audit)
			}
		}
	}

	fmt.Printf("net: %d requests, %d clients, %d-byte bodies against %s\n", requests, clients, bodyBytes, base)
	fmt.Printf("  %.0f req/s over %v (host: %d cores, GOMAXPROCS %d)\n",
		rep.Throughput, elapsed.Round(time.Millisecond), rep.Host.Cores, rep.Host.GOMAXPROCS)
	fmt.Printf("  %-16s %8s %8s %8s %8s %10s %10s %10s\n",
		"route", "sent", "ok", "shed", "errors", "p50", "p90", "p99")
	for _, st := range stats {
		fmt.Printf("  %-16s %8d %8d %8d %8d %9dus %9dus %9dus\n",
			st.Route, st.Sent, st.OK, st.Shed, st.Errors,
			st.P50Ns/1000, st.P90Ns/1000, st.P99Ns/1000)
	}
	for _, row := range rep.Server {
		if row.Restarts > 0 {
			fmt.Printf("  server: %s (%s, shard %d) died and was restarted %d times; neighbours unaffected\n",
				row.Route, row.Role, row.Shard, row.Restarts)
		}
	}
	if len(rep.PerShard) > 1 {
		fmt.Printf("  %-8s %8s %10s %10s %8s %8s %14s\n",
			"shard", "tenants", "requests", "ok", "shed", "errors", "cycles")
		for _, sr := range rep.PerShard {
			fmt.Printf("  %-8d %8d %10d %10d %8d %8d %14d\n",
				sr.Shard, sr.Tenants, sr.Requests, sr.OK, sr.Shed, sr.Errors, sr.Cycles)
		}
	}
	if len(rep.Phases) > 0 {
		fmt.Printf("  %-16s %8s %12s %12s %12s %12s %12s\n",
			"phase p50s", "spans", "queue-us", "marshal-us", "exec-cy", "gc-cy", "total-us")
		for _, ph := range rep.Phases {
			fmt.Printf("  %-16s %8d %12d %12d %12d %12d %12d\n",
				ph.Route, ph.Spans, ph.QueueNs.P50/1000, ph.MarshalNs.P50/1000,
				ph.ExecCycles.P50, ph.GCCycles.P50, ph.TotalNs.P50/1000)
		}
		if rep.SpanDropped > 0 {
			fmt.Printf("  (span ring overflowed: %d spans dropped; breakdown covers the tail)\n", rep.SpanDropped)
		}
	}

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "servbench: wrote %s\n", jsonPath)
	}
	return nil
}
