package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// codecacheReport is the -codecache JSON artifact: per-arm warm-start
// latency distributions, the headline improvement ratio, and the
// modeled code-memory win from sharing one artifact instead of keeping
// a compiled copy per tenant.
type codecacheReport struct {
	Host   telemetry.HostInfo `json:"host"`
	Trials int                `json:"trials"`
	// Warm-start latency = first-request latency minus the same tenant's
	// steady-state latency. The NetWide servlet has no clinit, so what
	// remains is process construction — dominated by per-process JIT
	// compilation in the off arm, reduced to a verified define plus an
	// artifact attach in the on arm.
	OffP50Ns int64   `json:"off_p50_ns"`
	OffP90Ns int64   `json:"off_p90_ns"`
	OnP50Ns  int64   `json:"on_p50_ns"`
	OnP90Ns  int64   `json:"on_p90_ns"`
	Ratio    float64 `json:"ratio"`
	MinRatio float64 `json:"min_ratio"`
	OffNs    []int64 `json:"off_ns"`
	OnNs     []int64 `json:"on_ns"`
	// Cache effectiveness on the on arm: misses are the one-time primer
	// compiles, hits are every tenant start after it.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// SharedCodeBytes is what the artifacts cost resident once (the on
	// arm); PrivateCodeBytes is the same code held once per tenant
	// process, which is what the off arm's private compiles amount to.
	SharedCodeBytes  uint64 `json:"shared_code_bytes"`
	PrivateCodeBytes uint64 `json:"private_code_bytes"`
}

// codecacheArm spins up a serving plane of lazy compile-heavy tenants —
// plus one eager primer, so the on arm's single compile-and-insert is
// paid at server start, exactly how a fleet amortizes it — and measures
// each route's scale-from-zero cost with the shared code cache on or
// off. Returns one warm-start sample per route and, when the cache is
// on, its hit/miss counters and resident artifact bytes.
func codecacheArm(trials, shards int, cache bool) (samples []int64, hits, misses, resident uint64, err error) {
	tenants := make([]serve.TenantConfig, 0, trials+1)
	tenants = append(tenants, serve.TenantConfig{
		Route: "/primer", Wide: true, MemKB: 8192, WorkUnits: 10,
	})
	for i := 0; i < trials; i++ {
		tenants = append(tenants, serve.TenantConfig{
			Route:     fmt.Sprintf("/wide%d", i),
			Wide:      true,
			Lazy:      true,
			MemKB:     8192,
			WorkUnits: 10,
		})
	}
	srv, err := serve.NewSharded(
		core.Config{Engine: core.EngineJITOpt, CodeCache: cache},
		serve.Config{Shards: shards},
		tenants)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, 0, 0, 0, err
	}
	base := "http://" + addr
	client := &http.Client{Timeout: 60 * time.Second}

	post := func(route string) (time.Duration, error) {
		t0 := time.Now()
		resp, err := client.Post(base+route, "text/plain", strings.NewReader("codecache"))
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("route %s: status %d", route, resp.StatusCode)
		}
		return time.Since(t0), nil
	}

	for i := 0; i < trials; i++ {
		route := fmt.Sprintf("/wide%d", i)
		first, err := post(route)
		if err != nil {
			srv.Close()
			return nil, 0, 0, 0, err
		}
		// Steady-state floor on the now-warm tenant: the request cost with
		// no process construction (and no compilation) left in it.
		floor := time.Duration(1<<62 - 1)
		for j := 0; j < 3; j++ {
			d, err := post(route)
			if err != nil {
				srv.Close()
				return nil, 0, 0, 0, err
			}
			if d < floor {
				floor = d
			}
		}
		warm := first - floor
		if warm < 1 {
			warm = 1
		}
		samples = append(samples, warm.Nanoseconds())
	}
	for _, vm := range srv.VMs() {
		kernel := vm.Tel.Reg.Kernel()
		hits += kernel.Counter(telemetry.MCodeHits).Value()
		misses += kernel.Counter(telemetry.MCodeMisses).Value()
		if vm.CodeMgr != nil {
			resident += vm.CodeMgr.ResidentBytes()
		}
	}
	if err := srv.Close(); err != nil {
		return nil, 0, 0, 0, err
	}
	for i, vm := range srv.VMs() {
		if rep := vm.Audit(true); !rep.OK() {
			return nil, 0, 0, 0, fmt.Errorf("codecache: post-run audit failed on shard %d:\n%s", i, rep)
		}
	}
	return samples, hits, misses, resident, nil
}

// codecacheBench is the -net -codecache A/B: the same compile-heavy
// servlet fleet scaled from zero with private per-process compilation
// versus the shared, content-addressed code cache. Fails unless cached
// warm starts beat private ones by at least minRatio at the median.
func codecacheBench(trials, shards int, jsonPath string, minRatio float64) error {
	if trials <= 0 {
		trials = 24
	}
	fmt.Fprintf(os.Stderr, "servbench: codecache A/B, %d scale-from-zero trials per arm\n", trials)

	offNs, _, _, _, err := codecacheArm(trials, shards, false)
	if err != nil {
		return fmt.Errorf("cache-off arm: %w", err)
	}
	onNs, hits, misses, resident, err := codecacheArm(trials, shards, true)
	if err != nil {
		return fmt.Errorf("cache-on arm: %w", err)
	}
	sort.Slice(offNs, func(i, j int) bool { return offNs[i] < offNs[j] })
	sort.Slice(onNs, func(i, j int) bool { return onNs[i] < onNs[j] })

	rep := codecacheReport{
		Host: telemetry.Host(), Trials: trials,
		OffP50Ns: pct(offNs, 0.5), OffP90Ns: pct(offNs, 0.9),
		OnP50Ns: pct(onNs, 0.5), OnP90Ns: pct(onNs, 0.9),
		MinRatio: minRatio,
		OffNs:    offNs, OnNs: onNs,
		CacheHits: hits, CacheMisses: misses,
		SharedCodeBytes:  resident,
		PrivateCodeBytes: resident * uint64(trials+1),
	}
	rep.Ratio = float64(rep.OffP50Ns) / float64(rep.OnP50Ns)

	fmt.Printf("codecache: scale-from-zero latency, %d trials per arm (steady-state subtracted)\n", trials)
	fmt.Printf("  %-26s %12s %12s\n", "arm", "p50", "p90")
	fmt.Printf("  %-26s %10dus %10dus\n", "private (compile per proc)", rep.OffP50Ns/1000, rep.OffP90Ns/1000)
	fmt.Printf("  %-26s %10dus %10dus\n", "shared (codecache attach)", rep.OnP50Ns/1000, rep.OnP90Ns/1000)
	fmt.Printf("  improvement: %.1fx at the median (gate: >=%.0fx)\n", rep.Ratio, minRatio)
	fmt.Printf("  cache: %d hits / %d misses; code resident %d KiB shared vs %d KiB as private copies\n",
		rep.CacheHits, rep.CacheMisses, rep.SharedCodeBytes>>10, rep.PrivateCodeBytes>>10)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "servbench: wrote %s\n", jsonPath)
	}
	if minRatio > 0 && rep.Ratio < minRatio {
		return fmt.Errorf("codecache: shared warm starts are only %.1fx faster than private at the median, want >=%.0fx", rep.Ratio, minRatio)
	}
	return nil
}
