package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// coldstartReport is the -coldstart JSON artifact: per-arm cold-start
// latency distributions and the headline improvement ratio.
type coldstartReport struct {
	Host   telemetry.HostInfo `json:"host"`
	Trials int                `json:"trials"`
	// Cold-start latency = first-request latency minus the same tenant's
	// steady-state latency, so HTTP and handler cost cancel out and what
	// remains is process construction: full init (module load + clinit
	// warmup) in one arm, template fork in the other.
	InitP50Ns  int64   `json:"init_p50_ns"`
	InitP90Ns  int64   `json:"init_p90_ns"`
	ForkP50Ns  int64   `json:"fork_p50_ns"`
	ForkP90Ns  int64   `json:"fork_p90_ns"`
	Ratio      float64 `json:"ratio"`
	MinRatio   float64 `json:"min_ratio"`
	InitNs     []int64 `json:"init_ns"`
	ForkNs     []int64 `json:"fork_ns"`
	SteadyP50s struct {
		InitNs int64 `json:"init_ns"`
		ForkNs int64 `json:"fork_ns"`
	} `json:"steady_p50"`
}

// coldstartArm spins up a serving plane with `trials` lazy warm-servlet
// tenants (template selects fork-based starts) and measures each route's
// scale-from-zero cost: the first request pays process construction, the
// steady-state floor is subtracted back out. Returns one cold-start
// sample per route plus the median steady latency.
func coldstartArm(trials, shards int, template bool) (samples []int64, steadyP50 int64, err error) {
	tenants := make([]serve.TenantConfig, 0, trials+1)
	if template {
		// Primer: a non-lazy template tenant started with the server, so
		// the one-time zygote warmup+checkpoint is paid before any
		// measured fork (exactly how a fleet amortizes it).
		tenants = append(tenants, serve.TenantConfig{
			Route: "/primer", Warm: true, Template: true, WorkUnits: 10,
		})
	}
	for i := 0; i < trials; i++ {
		tenants = append(tenants, serve.TenantConfig{
			Route:     fmt.Sprintf("/cold%d", i),
			Warm:      true,
			Lazy:      true,
			Template:  template,
			WorkUnits: 10,
		})
	}
	srv, err := serve.NewSharded(
		core.Config{Engine: core.EngineJITOpt},
		serve.Config{Shards: shards},
		tenants)
	if err != nil {
		return nil, 0, err
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, 0, err
	}
	base := "http://" + addr
	client := &http.Client{Timeout: 60 * time.Second}

	post := func(route string) (time.Duration, error) {
		t0 := time.Now()
		resp, err := client.Post(base+route, "text/plain", strings.NewReader("coldstart"))
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("route %s: status %d", route, resp.StatusCode)
		}
		return time.Since(t0), nil
	}

	var steady []int64
	for i := 0; i < trials; i++ {
		route := fmt.Sprintf("/cold%d", i)
		first, err := post(route)
		if err != nil {
			srv.Close()
			return nil, 0, err
		}
		// Steady-state floor on the now-warm tenant: the minimum of a few
		// repeats is the request cost with no process construction in it.
		floor := time.Duration(1<<62 - 1)
		for j := 0; j < 3; j++ {
			d, err := post(route)
			if err != nil {
				srv.Close()
				return nil, 0, err
			}
			if d < floor {
				floor = d
			}
		}
		cold := first - floor
		if cold < 1 {
			cold = 1
		}
		samples = append(samples, cold.Nanoseconds())
		steady = append(steady, floor.Nanoseconds())
	}
	if err := srv.Close(); err != nil {
		return nil, 0, err
	}
	for i, vm := range srv.VMs() {
		if rep := vm.Audit(true); !rep.OK() {
			return nil, 0, fmt.Errorf("coldstart: post-run audit failed on shard %d:\n%s", i, rep)
		}
	}
	sort.Slice(steady, func(i, j int) bool { return steady[i] < steady[j] })
	return samples, steady[len(steady)/2], nil
}

func pct(sorted []int64, p float64) int64 {
	return sorted[int(p*float64(len(sorted)-1))]
}

// coldstartBench is the -net -coldstart A/B: the same warm servlet (an
// expensive <clinit> lookup table) started from scratch per incarnation
// versus forked from a checkpointed zygote. Fails unless fork-based cold
// starts beat init-based ones by at least minRatio at the median.
func coldstartBench(trials, shards int, jsonPath string, minRatio float64) error {
	if trials <= 0 {
		trials = 24
	}
	fmt.Fprintf(os.Stderr, "servbench: coldstart A/B, %d scale-from-zero trials per arm\n", trials)

	initNs, initSteady, err := coldstartArm(trials, shards, false)
	if err != nil {
		return fmt.Errorf("init arm: %w", err)
	}
	forkNs, forkSteady, err := coldstartArm(trials, shards, true)
	if err != nil {
		return fmt.Errorf("fork arm: %w", err)
	}
	sort.Slice(initNs, func(i, j int) bool { return initNs[i] < initNs[j] })
	sort.Slice(forkNs, func(i, j int) bool { return forkNs[i] < forkNs[j] })

	rep := coldstartReport{
		Host: telemetry.Host(), Trials: trials,
		InitP50Ns: pct(initNs, 0.5), InitP90Ns: pct(initNs, 0.9),
		ForkP50Ns: pct(forkNs, 0.5), ForkP90Ns: pct(forkNs, 0.9),
		MinRatio: minRatio,
		InitNs:   initNs, ForkNs: forkNs,
	}
	rep.Ratio = float64(rep.InitP50Ns) / float64(rep.ForkP50Ns)
	rep.SteadyP50s.InitNs = initSteady
	rep.SteadyP50s.ForkNs = forkSteady

	fmt.Printf("coldstart: scale-from-zero latency, %d trials per arm (steady-state subtracted)\n", trials)
	fmt.Printf("  %-24s %12s %12s\n", "arm", "p50", "p90")
	fmt.Printf("  %-24s %10dus %10dus\n", "init (clinit warmup)", rep.InitP50Ns/1000, rep.InitP90Ns/1000)
	fmt.Printf("  %-24s %10dus %10dus\n", "fork (zygote template)", rep.ForkP50Ns/1000, rep.ForkP90Ns/1000)
	fmt.Printf("  improvement: %.1fx at the median (gate: >=%.0fx)\n", rep.Ratio, minRatio)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "servbench: wrote %s\n", jsonPath)
	}
	if minRatio > 0 && rep.Ratio < minRatio {
		return fmt.Errorf("coldstart: fork is only %.1fx faster than init at the median, want >=%.0fx", rep.Ratio, minRatio)
	}
	return nil
}
