// Command servbench regenerates the paper's Figure 4: scaling behaviour
// of JVM deployment models as the number of servlets increases, with and
// without a MemHog denial-of-service servlet.
//
// Usage:
//
//	servbench            # the six curves of Figure 4 (fluid host simulation)
//	servbench -real      # the isolation property on the real KaffeOS VM
//	servbench -real -http :8080   # with the telemetry HTTP endpoint
//	servbench -csv       # machine-readable output
//	servbench -net -requests 10000 -clients 32   # real HTTP load against a
//	                     # self-hosted serving plane (one process per route)
//	servbench -net -target http://host:8080      # aim at a running `kaffeos serve`
//	servbench -net -json out.json                # self-describing JSON artifact
//	servbench -net -overcommit -membudget 12582912  # A/B: static even-split
//	                     # limits vs the memory controller under one budget
//	servbench -net -coldstart                       # A/B: clinit cold starts vs
//	                     # zygote forks, gated at a 10x median improvement
//	servbench -net -codecache                       # A/B: private per-process JIT
//	                     # vs the shared code cache, gated at a 3x median improvement
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/jserv"
)

func main() {
	real := flag.Bool("real", false, "run the real-VM servlet demonstration instead of the host simulation")
	net := flag.Bool("net", false, "generate real HTTP load against a serving plane (self-hosted unless -target)")
	coldstart := flag.Bool("coldstart", false, "-net: run the cold-start A/B (clinit init vs zygote fork) and gate on -coldstartmin")
	trials := flag.Int("trials", 24, "-net -coldstart: scale-from-zero trials per arm")
	coldstartMin := flag.Float64("coldstartmin", 10, "-net -coldstart: minimum median init/fork improvement ratio (0 disables the gate)")
	codecache := flag.Bool("codecache", false, "-net: run the shared-code-cache A/B (private JIT per process vs shared artifacts) and gate on -codecachemin")
	codecacheMin := flag.Float64("codecachemin", 3, "-net -codecache: minimum median private/shared improvement ratio (0 disables the gate)")
	overcommit := flag.Bool("overcommit", false, "-net: run the overcommit A/B (static limits vs memory controller) under -membudget")
	memBudget := flag.Uint64("membudget", 12<<20, "-net -overcommit: global tenant memory budget in bytes")
	csv := flag.Bool("csv", false, "CSV output")
	requests := flag.Uint64("requests", 60, "requests per servlet (-real) or total requests (-net; default 10000 there)")
	httpAddr := flag.String("http", "", "serve the telemetry HTTP endpoint on this address in -real mode")
	gcWorkers := flag.Int("gcworkers", 0, "GC worker pool for collecting process heaps concurrently in -real mode (0 = GOMAXPROCS)")
	target := flag.String("target", "", "-net: base URL of a running server (empty = self-host)")
	routes := flag.String("routes", "/zone0,/zone1,/zone2,/memhog:hog:1024", "-net: route spec (see kaffeos serve)")
	clients := flag.Int("clients", 32, "-net: concurrent client connections")
	bodyBytes := flag.Int("body", 64, "-net: request body size in bytes")
	shards := flag.Int("shards", 1, "-net: engine shards for the self-hosted plane (one VM per shard)")
	jsonPath := flag.String("json", "", "-net: write the run report (with host info) to this file")
	flag.Parse()

	var err error
	switch {
	case *net && *coldstart:
		err = coldstartBench(*trials, *shards, *jsonPath, *coldstartMin)
	case *net && *codecache:
		err = codecacheBench(*trials, *shards, *jsonPath, *codecacheMin)
	case *net && *overcommit:
		n := *requests
		if n == 60 && !flagSet("requests") {
			n = 1600
		}
		c := *clients
		if c == 32 && !flagSet("clients") {
			c = 128
		}
		err = overcommitBench(*memBudget, n, c, *shards, *jsonPath)
	case *net:
		n := *requests
		if n == 60 && !flagSet("requests") {
			n = 10000
		}
		err = netBench(*target, *routes, *clients, n, *bodyBytes, *shards, *jsonPath)
	case *real:
		err = realDemo(*requests, *httpAddr, *gcWorkers)
	default:
		err = figure4(*csv)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "servbench: %v\n", err)
		os.Exit(1)
	}
}

// flagSet reports whether the user passed a flag explicitly.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func figure4(csv bool) error {
	params := jserv.DefaultParams()
	curves := jserv.Figure4(params)
	points := jserv.Figure4Points()

	if csv {
		fmt.Println("curve,servlets,seconds,crashes,thrash")
		for _, name := range jserv.CurveOrder() {
			for _, o := range curves[name] {
				fmt.Printf("%s,%d,%.1f,%d,%.2f\n", name, o.Config.Servlets, o.Seconds, o.Crashes, o.ThrashFactor)
			}
		}
		return nil
	}

	fmt.Println("Figure 4: time (s) for well-behaved servlets to answer 1000 requests each")
	fmt.Println("(log-scale in the paper; note who wins with and without the MemHog)")
	fmt.Printf("%-16s", "servlets")
	for _, n := range points {
		fmt.Printf("%9d", n)
	}
	fmt.Println()
	for _, name := range jserv.CurveOrder() {
		fmt.Printf("%-16s", name)
		for _, o := range curves[name] {
			fmt.Printf("%9.1f", o.Seconds)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Shape checks (paper §4.2):")
	k10 := at(curves["KaffeOS"], 10)
	kh10 := at(curves["KaffeOS,MemHog"], 10)
	n10 := at(curves["IBM/n"], 10)
	nh10 := at(curves["IBM/n,MemHog"], 10)
	i80 := at(curves["IBM/1"], 80)
	k80 := at(curves["KaffeOS"], 80)
	fmt.Printf("  KaffeOS consistent under attack: %.1fs -> %.1fs (%.1fx)\n", k10, kh10, kh10/k10)
	fmt.Printf("  IBM/n catastrophic under attack: %.1fs -> %.1fs (%.1fx)\n", n10, nh10, nh10/n10)
	fmt.Printf("  IBM/1 thrashes at scale:         %.1fs vs KaffeOS %.1fs at 80 servlets\n", i80, k80)
	return nil
}

func at(outs []jserv.Outcome, n int) float64 {
	for _, o := range outs {
		if o.Config.Servlets == n {
			return o.Seconds
		}
	}
	return 0
}

// realDemo runs the isolation experiment on the real VM: three servlets
// plus a MemHog, each in its own KaffeOS process.
func realDemo(requests uint64, httpAddr string, gcWorkers int) error {
	vm, err := core.NewVM(core.Config{Engine: core.EngineJITOpt, GCWorkers: gcWorkers})
	if err != nil {
		return err
	}
	if httpAddr != "" {
		addr, err := vm.Tel.Serve(httpAddr, vm.Snapshot)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "servbench: telemetry on http://%s (/procs /metrics /trace /ps)\n", addr)
	}
	eng := jserv.NewEngine(vm)
	for i := 0; i < 3; i++ {
		if _, err := eng.AddServlet(fmt.Sprintf("zone%d", i), 4096); err != nil {
			return err
		}
	}
	hog, err := eng.AddMemHog("memhog", 512)
	if err != nil {
		return err
	}
	ms, err := eng.ServeUntil(requests, 0)
	if err != nil {
		return err
	}
	fmt.Printf("real KaffeOS VM: 3 servlet zones + 1 MemHog (512 KiB memlimit)\n")
	fmt.Printf("  virtual time: %d ms for %d requests per servlet\n", ms, requests)
	for _, s := range eng.Servlets() {
		role := "servlet"
		if s.Hog {
			role = "memhog"
		}
		fmt.Printf("  %-8s %-8s handled=%-6d restarts=%d\n", s.Name, role, s.Handled(), s.Restarts())
	}
	fmt.Printf("  kernel heap after the dust settles: %d bytes\n", vm.KernelHeap.Bytes())
	if hog.Restarts() == 0 {
		return fmt.Errorf("memhog never hit its memlimit — isolation not demonstrated")
	}
	fmt.Println("  MemHog was killed by its memlimit and restarted; neighbours were unaffected.")
	return nil
}
