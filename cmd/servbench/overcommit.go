package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// overcommitRun is one half of the A/B artifact: the same overcommitted
// fleet under the same budget, with the memory controller off (static
// even-split limits) or on (MemBalancer redistribution).
type overcommitRun struct {
	Controller bool    `json:"controller"`
	Requests   uint64  `json:"requests"`
	OK         uint64  `json:"ok"`
	Shed       uint64  `json:"shed"`
	Errors     uint64  `json:"errors"`
	ShedRate   float64 `json:"shed_rate"`
	GCCycles   uint64  `json:"gc_cycles"`
	GCPerOK    float64 `json:"gc_cycles_per_ok"`
	Rebalances uint64  `json:"rebalance_rounds"`
	ElapsedMS  int64   `json:"elapsed_ms"`
	Throughput float64 `json:"requests_per_sec"`
}

// overcommitReport is the -json artifact for an overcommit A/B run.
type overcommitReport struct {
	Host     telemetry.HostInfo `json:"host"`
	Budget   uint64             `json:"budget_bytes"`
	Tenants  int                `json:"tenants"`
	Shards   int                `json:"shards"`
	Clients  int                `json:"clients"`
	Static   overcommitRun      `json:"static"`
	Balanced overcommitRun      `json:"balanced"`
}

// overcommitTenants is the fixed fleet: eight tenants whose combined
// appetite is far over the budget — four hot (large bodies held live
// in flight, heavy per-request work) and four nearly idle. The static
// baseline splits the budget evenly; the controller moves it to where
// the allocation actually happens.
func overcommitTenants(budget uint64) []serve.TenantConfig {
	perTenantKB := int(budget / 8 >> 10)
	tenants := make([]serve.TenantConfig, 8)
	for i := range tenants {
		work := 50
		inflight := 0
		if i < 4 {
			work = 20_000
			inflight = 24
		}
		tenants[i] = serve.TenantConfig{
			Route:       fmt.Sprintf("/t%d", i),
			WorkUnits:   work,
			MemKB:       perTenantKB,
			QueueMax:    12,
			MaxInflight: inflight,
		}
	}
	return tenants
}

// overcommitOnce self-hosts the plane and drives the skewed traffic mix
// (7/8 of requests carry 64 KiB bodies to the hot half) over HTTP.
func overcommitOnce(budget, requests uint64, clients, shards int, controller bool) (overcommitRun, error) {
	run := overcommitRun{Controller: controller, Requests: requests}
	cfg := serve.Config{Shards: shards, Place: serve.LeastLoaded}
	if controller {
		cfg.MemBudget = budget
	}
	srv, err := serve.NewSharded(
		core.Config{Engine: core.EngineJITOpt, TotalMemory: 32<<20 + budget/uint64(shards)},
		cfg, overcommitTenants(budget))
	if err != nil {
		return run, err
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return run, err
	}
	base := "http://" + addr

	hotBody := strings.Repeat("x", 64<<10)
	coldBody := "ping"
	start := time.Now()
	var next, ok200, shed503, errOther atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 60 * time.Second}
			for {
				i := next.Add(1) - 1
				if i >= requests {
					return
				}
				route, body := fmt.Sprintf("/t%d", i%4), hotBody
				if i%8 == 7 {
					route, body = fmt.Sprintf("/t%d", 4+(i/8)%4), coldBody
				}
				resp, err := client.Post(base+route, "text/plain", strings.NewReader(body))
				if err != nil {
					errOther.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusServiceUnavailable:
					shed503.Add(1)
				default:
					errOther.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if err := srv.Close(); err != nil {
		return run, err
	}
	for i, vm := range srv.VMs() {
		if audit := vm.Audit(true); !audit.OK() {
			return run, fmt.Errorf("post-run audit failed on shard %d:\n%s", i, audit)
		}
		for _, scope := range vm.Tel.Reg.Procs() {
			run.GCCycles += scope.Counter(telemetry.MGCCycles).Value()
		}
		run.Rebalances += vm.Tel.Reg.Kernel().Counter(telemetry.MMemBalRounds).Value()
	}

	run.OK = ok200.Load()
	run.Shed = shed503.Load()
	run.Errors = errOther.Load()
	run.ShedRate = float64(run.Shed) / float64(requests)
	if run.OK > 0 {
		run.GCPerOK = float64(run.GCCycles) / float64(run.OK)
	}
	run.ElapsedMS = elapsed.Milliseconds()
	run.Throughput = float64(requests) / elapsed.Seconds()
	return run, nil
}

// overcommitBench runs the overcommit scenario twice — static even-split
// limits, then the MemBalancer controller — under the same global budget,
// and prints the comparison the bench gate records.
func overcommitBench(budget, requests uint64, clients, shards int, jsonPath string) error {
	fmt.Fprintf(os.Stderr, "servbench: overcommit A/B — 8 tenants under a %d MiB budget, %d requests, %d clients, %d shards\n",
		budget>>20, requests, clients, shards)

	static, err := overcommitOnce(budget, requests, clients, shards, false)
	if err != nil {
		return fmt.Errorf("static run: %w", err)
	}
	balanced, err := overcommitOnce(budget, requests, clients, shards, true)
	if err != nil {
		return fmt.Errorf("balanced run: %w", err)
	}

	rep := overcommitReport{
		Host: telemetry.Host(), Budget: budget, Tenants: 8,
		Shards: shards, Clients: clients, Static: static, Balanced: balanced,
	}

	fmt.Printf("overcommit: 8 tenants, %d MiB budget (room for ~3 hot heaps)\n", budget>>20)
	fmt.Printf("  %-10s %8s %8s %8s %10s %12s %12s %10s\n",
		"config", "ok", "shed", "errors", "shed-rate", "gc-cycles", "gc/ok", "req/s")
	for _, r := range []overcommitRun{static, balanced} {
		name := "static"
		if r.Controller {
			name = "balanced"
		}
		fmt.Printf("  %-10s %8d %8d %8d %9.1f%% %12d %12.1f %10.0f\n",
			name, r.OK, r.Shed, r.Errors, 100*r.ShedRate, r.GCCycles, r.GCPerOK, r.Throughput)
	}
	fmt.Printf("  controller ran %d rebalance rounds\n", balanced.Rebalances)
	switch {
	case balanced.Shed <= static.Shed && balanced.GCPerOK < static.GCPerOK:
		fmt.Printf("  verdict: controller wins — shed %d -> %d, gc/ok %.1f -> %.1f\n",
			static.Shed, balanced.Shed, static.GCPerOK, balanced.GCPerOK)
	default:
		fmt.Printf("  verdict: controller did NOT beat static on this run\n")
	}

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "servbench: wrote %s\n", jsonPath)
	}
	if balanced.Shed > static.Shed || balanced.GCPerOK >= static.GCPerOK {
		return fmt.Errorf("overcommit gate: controller did not beat static (shed %d vs %d, gc/ok %.1f vs %.1f)",
			balanced.Shed, static.Shed, balanced.GCPerOK, static.GCPerOK)
	}
	return nil
}
