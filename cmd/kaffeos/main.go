// Command kaffeos runs programs written in kvm assembly on the KaffeOS
// virtual machine, one isolated process per program file.
//
// Usage:
//
//	kaffeos run prog.kasm [prog2.kasm ...]   run programs, one process each
//	kaffeos run -main app/Main prog.kasm     explicit entry class
//	kaffeos run -mem 4096 prog.kasm          per-process memlimit (KiB)
//	kaffeos run -stats prog.kasm             resource accounting at exit
//	kaffeos run -trace out.jsonl prog.kasm   dump the kernel event trace
//	kaffeos run -http :8080 prog.kasm        HTTP introspection endpoint
//	kaffeos run -faults spec prog.kasm       run under fault injection + audit
//	kaffeos serve -addr :8080 -routes spec   HTTP serving plane, one process per route
//	kaffeos trace -spans spans.jsonl         per-phase quantiles + slowest requests
//	kaffeos trace -url http://host:9090      same, scraped from a live /spans endpoint
//	kaffeos ps [flags] prog.kasm ...         run, then print the process table
//	kaffeos top -interval 50 prog.kasm ...   re-render the table as the VM runs
//	kaffeos check prog.kasm                  assemble + verify only
//	kaffeos check -seeds 32 [prog.kasm ...]  fault-injection sweep + invariant audit
//	kaffeos dis prog.kasm                    disassemble round-trip
//
// Each program must contain a class with a static main()V or main()I.
// Without -main, the first class defining one is used.
//
// ps and top accept the run flags too; ps additionally takes -for N to
// bound the run to N virtual milliseconds (0 = run to completion). The
// table includes reclaimed processes: per-process accounting survives
// reclamation in the telemetry registry.
//
// With -faults, run arms the deterministic fault-injection plane with the
// given plan (e.g. "seed=7,all=0.01" or "heap.alloc=0.02,sched.kill=@100";
// see repro/internal/faults) and audits every kernel invariant after the
// run; processes dying of injected faults is expected, broken bookkeeping
// is not. check -seeds=N runs its workload once per seed 1..N under
// "all=0.01" (override with -faults) and fails if any seed leaves a single
// invariant violated.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bytecode"
	"repro/internal/telemetry"
	"repro/kaffeos"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = runCmd(os.Args[2:])
	case "ps":
		err = psCmd(os.Args[2:])
	case "top":
		err = topCmd(os.Args[2:])
	case "serve":
		err = serveCmd(os.Args[2:])
	case "trace":
		err = traceCmd(os.Args[2:])
	case "check":
		err = checkCmd(os.Args[2:])
	case "dis":
		err = disCmd(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "kaffeos: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: kaffeos run|ps|top|serve|trace|check|dis [flags] [file.kasm ...]")
	os.Exit(2)
}

// runFlags are the flags shared by run, ps and top.
type runFlags struct {
	mainClass *string
	memKB     *int
	engine    *string
	barrier   *string
	cpuMS     *int
	gcWorkers *int
	trace     *string
	httpAddr  *string
	faults    *string
}

func addRunFlags(fs *flag.FlagSet) *runFlags {
	return &runFlags{
		mainClass: fs.String("main", "", "entry class (default: first class with main)"),
		memKB:     fs.Int("mem", 16384, "per-process memory limit in KiB"),
		engine:    fs.String("engine", "jit-opt", "execution engine: interp | jit | jit-opt"),
		barrier:   fs.String("barrier", "NoHeapPointer", "write barrier: NoWriteBarrier | HeapPointer | NoHeapPointer | FakeHeapPointer"),
		cpuMS:     fs.Int("cpu", 0, "per-process CPU limit in virtual milliseconds (0 = unlimited)"),
		gcWorkers: fs.Int("gcworkers", 0, "GC worker pool for collecting process heaps concurrently (0 = GOMAXPROCS)"),
		trace:     fs.String("trace", "", "dump the kernel event trace to this file as JSON lines at exit"),
		httpAddr:  fs.String("http", "", "serve the telemetry HTTP endpoint on this address (e.g. :8080)"),
		faults:    fs.String("faults", "", `arm deterministic fault injection with this plan (e.g. "seed=7,all=0.01")`),
	}
}

type job struct {
	proc *kaffeos.Process
	th   *kaffeos.Thread
	file string
}

// setup builds the VM and one process per program file, applying the
// shared run/ps/top flags (tracing on when -trace is set, HTTP endpoint
// when -http is set).
func setup(rf *runFlags, files []string) (*kaffeos.VM, []job, error) {
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no program files")
	}
	vm, err := kaffeos.New(kaffeos.Config{
		Engine:    kaffeos.Engine(*rf.engine),
		Barrier:   kaffeos.WriteBarrier(*rf.barrier),
		GCWorkers: *rf.gcWorkers,
		Stdout:    os.Stdout,
		Faults:    *rf.faults,
	})
	if err != nil {
		return nil, nil, err
	}
	if *rf.trace != "" {
		vm.SetTracing(true)
	}
	if *rf.httpAddr != "" {
		addr, err := vm.ServeTelemetry(*rf.httpAddr)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "kaffeos: telemetry on http://%s (/procs /metrics /trace /ps)\n", addr)
	}

	var jobs []job
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, nil, err
		}
		mod, err := bytecode.Assemble(string(src))
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", file, err)
		}
		entry := *rf.mainClass
		if entry == "" {
			entry = findMain(mod)
			if entry == "" {
				return nil, nil, fmt.Errorf("%s: no class with a static main method", file)
			}
		}
		p, err := vm.NewProcess(file, kaffeos.ProcessConfig{
			MemLimit: uint64(*rf.memKB) << 10,
			CPULimit: uint64(*rf.cpuMS) * 500_000,
		})
		if err != nil {
			return nil, nil, err
		}
		if err := p.LoadModule(mod); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", file, err)
		}
		th, err := p.Start(entry)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", file, err)
		}
		jobs = append(jobs, job{proc: p, th: th, file: file})
	}
	return vm, jobs, nil
}

// finish writes the -trace dump, if requested.
func finish(vm *kaffeos.VM, rf *runFlags) error {
	if *rf.trace == "" {
		return nil
	}
	f, err := os.Create(*rf.trace)
	if err != nil {
		return err
	}
	defer f.Close()
	tr := vm.Telemetry().Trace
	if err := tr.WriteJSONL(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "kaffeos: wrote %d events to %s (%d dropped from ring)\n",
		tr.Total()-tr.Dropped(), *rf.trace, tr.Dropped())
	return nil
}

// printStats writes the stable, greppable -stats report: one "proc" line
// and one "gc-pause" line per process, then kernel-wide lines.
func printStats(vm *kaffeos.VM) {
	hub := vm.Telemetry()
	snap := vm.Snapshot()
	for _, r := range snap.Procs {
		fmt.Fprintf(os.Stderr,
			"proc pid=%d name=%q state=%s cpu-cycles=%d cpu-ms=%d io-bytes=%d heap-bytes=%d mem-use=%d mem-limit=%d gcs=%d gc-cycles=%d\n",
			r.Pid, r.Name, r.State, r.CPUCycles, r.CPUCycles/telemetry.CyclesPerMs,
			r.IOBytes, r.HeapBytes, r.MemUse, r.MemLimit, r.GCs, r.GCCycles)
		pause := hub.Reg.Proc(r.Pid).Histogram(telemetry.MGCPause)
		fmt.Fprintf(os.Stderr, "gc-pause pid=%d %s\n", r.Pid, pause.Summary())
	}
	kernel := hub.Reg.Kernel()
	fmt.Fprintf(os.Stderr, "gc-pause pid=0 %s\n", kernel.Histogram(telemetry.MGCPause).Summary())
	fmt.Fprintf(os.Stderr, "barrier checks=%d violations=%d\n",
		vm.BarriersExecuted(), kernel.Counter(telemetry.MViolations).Value())
	fmt.Fprintf(os.Stderr, "memlimit failures=%d\n", kernel.Counter(telemetry.MMemFailures).Value())
	fmt.Fprintf(os.Stderr, "gc-fastpath hits=%d misses=%d overlap=%d\n",
		snap.GCFastHits, snap.GCFastMisses, snap.GCOverlap)
	fmt.Fprintf(os.Stderr, "kernel gcs=%d virtual-ms=%d events=%d\n",
		snap.KernelGCs, snap.NowMillis, snap.Events)
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	rf := addRunFlags(fs)
	stats := fs.Bool("stats", false, "print per-process resource accounting at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	vm, jobs, err := setup(rf, fs.Args())
	if err != nil {
		return err
	}
	if err := vm.Run(); err != nil {
		return err
	}
	if *stats {
		printStats(vm)
	}
	if err := finish(vm, rf); err != nil {
		return err
	}
	exitCode := 0
	for _, j := range jobs {
		switch {
		case j.proc.Exited():
			fmt.Fprintf(os.Stderr, "kaffeos: %s: exited", j.file)
			if j.th.Done() && j.th.Err() == nil {
				fmt.Fprintf(os.Stderr, " (result %d)", j.th.Result())
			}
			fmt.Fprintln(os.Stderr)
		default:
			fmt.Fprintf(os.Stderr, "kaffeos: %s: died: %s\n", j.file, j.proc.FailureClass())
			if *rf.faults == "" {
				// Under fault injection, dying processes are the point;
				// only broken invariants (below) fail the run.
				exitCode = 1
			}
		}
	}
	if *rf.faults != "" {
		vm.GCAll()
		rep := vm.Audit(true)
		fmt.Fprintf(os.Stderr, "kaffeos: %s\n", vm.FaultSummary())
		fmt.Fprintf(os.Stderr, "kaffeos: %s\n", rep)
		if !rep.OK() {
			exitCode = 1
		}
	}
	if exitCode != 0 {
		os.Exit(exitCode)
	}
	return nil
}

// psCmd runs the programs (optionally for a bounded stretch of virtual
// time) and prints the /proc-style process table.
func psCmd(args []string) error {
	fs := flag.NewFlagSet("ps", flag.ExitOnError)
	rf := addRunFlags(fs)
	forMS := fs.Int("for", 0, "run for this many virtual milliseconds before printing (0 = to completion)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	vm, _, err := setup(rf, fs.Args())
	if err != nil {
		return err
	}
	if err := vm.RunFor(uint64(*forMS) * 500_000); err != nil {
		return err
	}
	telemetry.RenderTable(os.Stdout, vm.Snapshot())
	return finish(vm, rf)
}

// topCmd re-renders the process table every -interval virtual
// milliseconds while the programs run.
func topCmd(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	rf := addRunFlags(fs)
	intervalMS := fs.Int("interval", 50, "virtual milliseconds between refreshes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *intervalMS <= 0 {
		return fmt.Errorf("top: -interval must be positive")
	}
	vm, _, err := setup(rf, fs.Args())
	if err != nil {
		return err
	}
	for {
		before := vm.Snapshot().NowCycles
		if err := vm.RunFor(uint64(*intervalMS) * 500_000); err != nil {
			return err
		}
		snap := vm.Snapshot()
		fmt.Printf("--- t=%dms (%d cycles) kernel-gcs=%d ---\n",
			snap.NowMillis, snap.NowCycles, snap.KernelGCs)
		telemetry.RenderTable(os.Stdout, snap)
		if d := vm.Telemetry().Trace.Dropped(); d > 0 {
			// A wrapped ring means the retained trace is a window, not the
			// whole run — never let a truncated trace read as complete.
			fmt.Printf("warning: trace ring overflowed, %d events dropped (trace is truncated)\n", d)
		}
		if snap.NowCycles == before {
			break // no progress: every thread exited
		}
	}
	return finish(vm, rf)
}

func findMain(mod *bytecode.Module) string {
	for _, c := range mod.Classes {
		for _, m := range c.Methods {
			if m.Name == "main" && m.Static && (m.Sig == "()V" || m.Sig == "()I") {
				return c.Name
			}
		}
	}
	return ""
}

func checkCmd(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	seeds := fs.Int("seeds", 0, "sweep this many fault-injection seeds through a full run + audit (0 = assemble/verify only)")
	spec := fs.String("faults", "all=0.01", "fault plan template applied to every seed in the sweep")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seeds <= 0 {
		return checkStatic(fs.Args())
	}
	return checkSweep(*seeds, *spec, fs.Args())
}

// checkStatic is the classic mode: assemble + verify each file.
func checkStatic(files []string) error {
	if len(files) == 0 {
		return fmt.Errorf("no files")
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		mod, err := bytecode.Assemble(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		if err := bytecode.VerifyModule(mod); err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		total := 0
		for _, c := range mod.Classes {
			for _, m := range c.Methods {
				if m.Code != nil {
					total += len(m.Code.Instrs)
				}
			}
		}
		fmt.Printf("%s: ok (%d classes, %d instructions)\n", file, len(mod.Classes), total)
	}
	return nil
}

// checkWorkload is the built-in sweep program when no files are given:
// two threads churning linked lists, so a run exercises allocation, GC,
// write barriers, thread spawn/join, and process reclamation.
const checkWorkload = `
.class app/Node
.field next Lapp/Node;
.field v I
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Object.<init> ()V
	return
.end
.end
.class app/Churn extends java/lang/Thread
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Thread.<init> ()V
	return
.end
.method run ()V
.locals 4
.stack 3
	iconst 0
	istore 1
ROUND:	iload 1
	ldc 40
	if_icmpge DONE
	aconst_null
	astore 2
	iconst 0
	istore 3
LIST:	iload 3
	ldc 64
	if_icmpge NEXTR
	new app/Node
	dup
	invokespecial app/Node.<init> ()V
	dup
	aload 2
	putfield app/Node.next Lapp/Node;
	dup
	iload 3
	putfield app/Node.v I
	astore 2
	iinc 3 1
	goto LIST
NEXTR:	aconst_null
	astore 2
	iinc 1 1
	goto ROUND
DONE:	return
.end
.end
.class app/Main
.method main ()I static
.locals 2
.stack 2
	new app/Churn
	dup
	invokespecial app/Churn.<init> ()V
	astore 0
	new app/Churn
	dup
	invokespecial app/Churn.<init> ()V
	astore 1
	aload 0
	invokevirtual java/lang/Thread.start ()V
	aload 1
	invokevirtual java/lang/Thread.start ()V
	aload 0
	invokevirtual java/lang/Thread.join ()V
	aload 1
	invokevirtual java/lang/Thread.join ()V
	iconst 1
	ireturn
.end
.end`

// sweepWarmSource is the zygote program for the sweep's checkpoint/fork
// churn: a <clinit>-built lookup table, checkpointable right after load.
const sweepWarmSource = `
.class app/SweepWarm
.static table Ljava/util/Vector;
.method <clinit> ()V static
.locals 1
.stack 5
	new java/util/Vector
	dup
	invokespecial java/util/Vector.<init> ()V
	putstatic app/SweepWarm.table Ljava/util/Vector;
	iconst 0
	istore 0
L0:	iload 0
	ldc 32
	if_icmpge DONE
	getstatic app/SweepWarm.table Ljava/util/Vector;
	new java/lang/Integer
	dup
	iload 0
	iload 0
	imul
	invokespecial java/lang/Integer.<init> (I)V
	invokevirtual java/util/Vector.add (Ljava/lang/Object;)V
	iinc 0 1
	goto L0
DONE:	return
.end
.end`

// checkSweep runs the workload once per seed 1..n with the fault plane
// armed, then audits every kernel invariant. Processes dying of injected
// faults is the expected outcome; any bookkeeping violation fails the
// sweep. Each seed also churns the template path — warm a zygote,
// checkpoint it, fork clones onto the workload, kill the origin — so
// fork.copy and friends get injected into alongside the classic sites.
func checkSweep(n int, spec string, files []string) error {
	type prog struct {
		name string
		mod  *bytecode.Module
	}
	var progs []prog
	if len(files) == 0 {
		mod, err := bytecode.Assemble(checkWorkload)
		if err != nil {
			return fmt.Errorf("built-in workload: %w", err)
		}
		progs = []prog{{"churn-1", mod}, {"churn-2", mod}}
	} else {
		for _, file := range files {
			src, err := os.ReadFile(file)
			if err != nil {
				return err
			}
			mod, err := bytecode.Assemble(string(src))
			if err != nil {
				return fmt.Errorf("%s: %w", file, err)
			}
			progs = append(progs, prog{file, mod})
		}
	}
	badSeeds := 0
	for seed := 1; seed <= n; seed++ {
		plan := fmt.Sprintf("seed=%d,%s", seed, spec)
		// MemBudget arms the memory-balancer controller so the sweep
		// exercises the membal.rebalance fault site alongside the rest;
		// the tight interval (one quantum) gets rebalance rounds even into
		// runs that injected faults cut short.
		// CodeCache (with the default jit-opt engine) puts the
		// codecache.attach site on every process creation and module load,
		// so the sweep injects into attach unwinds too.
		vm, err := kaffeos.New(kaffeos.Config{
			Faults: plan, MemBudget: 48 << 20, MemBalInterval: 100_000,
			Engine: kaffeos.JITOpt, CodeCache: true,
		})
		if err != nil {
			return err
		}
		for _, pr := range progs {
			entry := findMain(pr.mod)
			if entry == "" {
				return fmt.Errorf("%s: no class with a static main method", pr.name)
			}
			p, err := vm.NewProcess(pr.name, kaffeos.ProcessConfig{MemLimit: 16 << 20})
			if err != nil {
				continue // injected allocation failure at creation: fine
			}
			if err := p.LoadModule(pr.mod); err != nil {
				continue // process killed by a fault mid-load: fine
			}
			if _, err := p.Start(entry); err != nil {
				continue // ditto at main-thread spawn
			}
		}
		// Template churn: every step may die of an injected fault (that is
		// the point), but whatever survives must keep the books exact. An
		// attempt killed mid-warmup or mid-copy still exercised the unwind
		// paths; retry a few times so most seeds also fork successfully.
		for attempt := 0; attempt < 3; attempt++ {
			zygote, err := vm.NewProcess("zygote", kaffeos.ProcessConfig{MemLimit: 16 << 20})
			if err != nil {
				continue // injected allocation failure at creation: fine
			}
			if err := zygote.LoadSource(sweepWarmSource); err != nil {
				zygote.Kill() // warmup died of an injected fault: fine
				continue
			}
			tpl, err := vm.Checkpoint(zygote, "sweep")
			zygote.Kill()
			if err != nil {
				continue // checkpoint copy faulted and unwound: fine
			}
			for i := 0; i < 2; i++ {
				clone, err := tpl.Fork(fmt.Sprintf("clone-%d", i), kaffeos.ProcessConfig{MemLimit: 16 << 20})
				if err != nil {
					continue // fork.copy fault unwound the clone: fine
				}
				if err := clone.LoadModule(progs[0].mod); err != nil {
					continue
				}
				_, _ = clone.Start(findMain(progs[0].mod))
			}
			if seed%2 == 0 {
				_ = tpl.Release() // odd seeds audit with the template live
			}
			break
		}
		if err := vm.Run(); err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		vm.GCAll()
		rep := vm.Audit(true)
		fmt.Printf("seed %3d: %s; %s\n", seed, vm.FaultSummary(), rep)
		if !rep.OK() {
			badSeeds++
			for _, v := range rep.Violations {
				fmt.Printf("    %s: %s\n", v.Rule, v.Detail)
			}
		}
	}
	if badSeeds > 0 {
		fmt.Printf("check: %d/%d seeds left invariants violated\n", badSeeds, n)
		os.Exit(1)
	}
	fmt.Printf("check: %d seeds, all invariants held\n", n)
	return nil
}

func disCmd(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("no files")
	}
	for _, file := range args {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		mod, err := bytecode.Assemble(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		for _, c := range mod.Classes {
			if c.Super != "" {
				fmt.Printf(".class %s extends %s\n", c.Name, c.Super)
			} else {
				fmt.Printf(".class %s\n", c.Name)
			}
			for _, f := range c.Fields {
				kw := ".field"
				if f.Static {
					kw = ".static"
				}
				fmt.Printf("%s %s %s\n", kw, f.Name, f.Desc)
			}
			for _, m := range c.Methods {
				mod := ""
				if m.Static {
					mod = " static"
				}
				if m.Code == nil {
					fmt.Printf(".method %s %s%s native\n.end\n", m.Name, m.Sig, mod)
					continue
				}
				fmt.Printf(".method %s %s%s\n.locals %d\n.stack %d\n", m.Name, m.Sig, mod, m.MaxLocals, m.MaxStack)
				fmt.Print(bytecode.Disassemble(m.Code))
				fmt.Println(".end")
			}
			fmt.Println(".end")
		}
	}
	return nil
}
