// Command kaffeos runs programs written in kvm assembly on the KaffeOS
// virtual machine, one isolated process per program file.
//
// Usage:
//
//	kaffeos run prog.kasm [prog2.kasm ...]   run programs, one process each
//	kaffeos run -main app/Main prog.kasm     explicit entry class
//	kaffeos run -mem 4096 prog.kasm          per-process memlimit (KiB)
//	kaffeos check prog.kasm                  assemble + verify only
//	kaffeos dis prog.kasm                    disassemble round-trip
//
// Each program must contain a class with a static main()V or main()I.
// Without -main, the first class defining one is used.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bytecode"
	"repro/kaffeos"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = runCmd(os.Args[2:])
	case "check":
		err = checkCmd(os.Args[2:])
	case "dis":
		err = disCmd(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "kaffeos: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: kaffeos run|check|dis [flags] file.kasm ...")
	os.Exit(2)
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	mainClass := fs.String("main", "", "entry class (default: first class with main)")
	memKB := fs.Int("mem", 16384, "per-process memory limit in KiB")
	engine := fs.String("engine", "jit-opt", "execution engine: interp | jit | jit-opt")
	barrier := fs.String("barrier", "NoHeapPointer", "write barrier: NoWriteBarrier | HeapPointer | NoHeapPointer | FakeHeapPointer")
	stats := fs.Bool("stats", false, "print per-process resource accounting at exit")
	cpuMS := fs.Int("cpu", 0, "per-process CPU limit in virtual milliseconds (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no program files")
	}

	vm, err := kaffeos.New(kaffeos.Config{
		Engine:  kaffeos.Engine(*engine),
		Barrier: kaffeos.WriteBarrier(*barrier),
		Stdout:  os.Stdout,
	})
	if err != nil {
		return err
	}

	type job struct {
		proc *kaffeos.Process
		th   *kaffeos.Thread
		file string
	}
	var jobs []job
	for _, file := range fs.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		mod, err := bytecode.Assemble(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		entry := *mainClass
		if entry == "" {
			entry = findMain(mod)
			if entry == "" {
				return fmt.Errorf("%s: no class with a static main method", file)
			}
		}
		p, err := vm.NewProcess(file, kaffeos.ProcessConfig{
			MemLimit: uint64(*memKB) << 10,
			CPULimit: uint64(*cpuMS) * 500_000,
		})
		if err != nil {
			return err
		}
		if err := p.LoadModule(mod); err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		th, err := p.Start(entry)
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		jobs = append(jobs, job{proc: p, th: th, file: file})
	}

	if err := vm.Run(); err != nil {
		return err
	}
	exitCode := 0
	if *stats {
		fmt.Fprintf(os.Stderr, "%-30s %12s %12s %10s\n", "process", "cpu-cycles", "io-bytes", "virtual-ms")
		for _, j := range jobs {
			fmt.Fprintf(os.Stderr, "%-30s %12d %12d %10d\n",
				j.file, j.proc.CPUCycles(), j.proc.IOBytes(), j.proc.CPUCycles()/500_000)
		}
	}
	for _, j := range jobs {
		switch {
		case j.proc.Exited():
			fmt.Fprintf(os.Stderr, "kaffeos: %s: exited", j.file)
			if j.th.Done() && j.th.Err() == nil {
				fmt.Fprintf(os.Stderr, " (result %d)", j.th.Result())
			}
			fmt.Fprintln(os.Stderr)
		default:
			fmt.Fprintf(os.Stderr, "kaffeos: %s: died: %s\n", j.file, j.proc.FailureClass())
			exitCode = 1
		}
	}
	if exitCode != 0 {
		os.Exit(exitCode)
	}
	return nil
}

func findMain(mod *bytecode.Module) string {
	for _, c := range mod.Classes {
		for _, m := range c.Methods {
			if m.Name == "main" && m.Static && (m.Sig == "()V" || m.Sig == "()I") {
				return c.Name
			}
		}
	}
	return ""
}

func checkCmd(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("no files")
	}
	for _, file := range args {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		mod, err := bytecode.Assemble(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		if err := bytecode.VerifyModule(mod); err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		total := 0
		for _, c := range mod.Classes {
			for _, m := range c.Methods {
				if m.Code != nil {
					total += len(m.Code.Instrs)
				}
			}
		}
		fmt.Printf("%s: ok (%d classes, %d instructions)\n", file, len(mod.Classes), total)
	}
	return nil
}

func disCmd(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("no files")
	}
	for _, file := range args {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		mod, err := bytecode.Assemble(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		for _, c := range mod.Classes {
			if c.Super != "" {
				fmt.Printf(".class %s extends %s\n", c.Name, c.Super)
			} else {
				fmt.Printf(".class %s\n", c.Name)
			}
			for _, f := range c.Fields {
				kw := ".field"
				if f.Static {
					kw = ".static"
				}
				fmt.Printf("%s %s %s\n", kw, f.Name, f.Desc)
			}
			for _, m := range c.Methods {
				mod := ""
				if m.Static {
					mod = " static"
				}
				if m.Code == nil {
					fmt.Printf(".method %s %s%s native\n.end\n", m.Name, m.Sig, mod)
					continue
				}
				fmt.Printf(".method %s %s%s\n.locals %d\n.stack %d\n", m.Name, m.Sig, mod, m.MaxLocals, m.MaxStack)
				fmt.Print(bytecode.Disassemble(m.Code))
				fmt.Println(".end")
			}
			fmt.Println(".end")
		}
	}
	return nil
}
