package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// spanInputs collects -spans values: the flag repeats and each value may
// be comma-separated, so a sharded plane's artifacts merge in one call.
type spanInputs []string

func (f *spanInputs) String() string { return strings.Join(*f, ",") }

func (f *spanInputs) Set(v string) error {
	for _, p := range strings.Split(v, ",") {
		if p = strings.TrimSpace(p); p != "" {
			*f = append(*f, p)
		}
	}
	return nil
}

// traceCmd analyzes request spans: per-phase latency quantiles and the
// top-K slowest requests. Inputs are /spans JSONL dumps, flight-recorder
// post-mortems, whole flight directories, or a live telemetry endpoint —
// several may be given (repeat -spans or comma-separate) and their spans
// are merged in start-time order, which is how a sharded plane's
// per-shard artifacts become one trace.
func traceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	var inputs spanInputs
	fs.Var(&inputs, "spans",
		"read spans from file(s): /spans JSONL, a flight-recorder dump, or a flight directory; repeat or comma-separate to merge")
	url := fs.String("url", "", "scrape spans from a live telemetry endpoint (e.g. http://127.0.0.1:9090)")
	route := fs.String("route", "", "only analyze spans of this route")
	shard := fs.Int("shard", -1, "only analyze spans of this shard (-1 = all)")
	topK := fs.Int("top", 5, "show the K slowest requests")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var spans []telemetry.Span
	if *url != "" {
		got, err := scrapeSpans(strings.TrimSuffix(*url, "/") + "/spans")
		if err != nil {
			return err
		}
		spans = append(spans, got...)
	}
	for _, path := range inputs {
		got, err := readSpansPath(path)
		if err != nil {
			return err
		}
		spans = append(spans, got...)
	}
	if *url == "" && len(inputs) == 0 {
		return fmt.Errorf("trace: need -spans file(s) or -url endpoint")
	}
	// Merge order: wall-clock start. Per-shard recorders each emit in
	// their own order; interleaving by Start makes the merged stream read
	// as one timeline.
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	if *route != "" {
		keep := spans[:0]
		for _, sp := range spans {
			if sp.Route == *route {
				keep = append(keep, sp)
			}
		}
		spans = keep
	}
	if *shard >= 0 {
		keep := spans[:0]
		for _, sp := range spans {
			if sp.Shard == *shard {
				keep = append(keep, sp)
			}
		}
		spans = keep
	}
	if len(spans) == 0 {
		return fmt.Errorf("trace: no spans to analyze")
	}
	report(os.Stdout, spans, *topK)
	return nil
}

func scrapeSpans(url string) ([]telemetry.Span, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("trace: GET %s: status %d", url, resp.StatusCode)
	}
	return decodeJSONL(resp.Body)
}

// readSpansPath loads spans from one input path: a directory is read as a
// flight-recorder artifact dir (every flight-*.json and *.jsonl inside),
// a file as JSONL or a single flight dump.
func readSpansPath(path string) ([]telemetry.Span, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return readSpansFile(path)
	}
	var paths []string
	for _, pat := range []string{"flight-*.json", "*.jsonl"} {
		got, err := filepath.Glob(filepath.Join(path, pat))
		if err != nil {
			return nil, err
		}
		paths = append(paths, got...)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("trace: no flight dumps or span files in %s", path)
	}
	sort.Strings(paths)
	var out []telemetry.Span
	for _, p := range paths {
		spans, err := readSpansFile(p)
		if err != nil {
			return nil, err
		}
		out = append(out, spans...)
	}
	return out, nil
}

// readSpansFile loads spans from a file: either /spans JSONL, or a
// flight-recorder dump (one JSON object with an embedded span list).
func readSpansFile(path string) ([]telemetry.Span, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var dump serve.FlightDump
	if err := json.Unmarshal(data, &dump); err == nil && dump.Reason != "" {
		fmt.Printf("flight dump: tenant %s (pid %d, shard %d) %s at %s, deaths=%d, %d events retained\n",
			dump.Name, dump.Pid, dump.Shard, dump.Reason, dump.Time, dump.Deaths, len(dump.Events))
		return dump.Spans, nil
	}
	return decodeJSONL(strings.NewReader(string(data)))
}

func decodeJSONL(r io.Reader) ([]telemetry.Span, error) {
	var out []telemetry.Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var sp telemetry.Span
		if err := json.Unmarshal([]byte(line), &sp); err != nil {
			return nil, fmt.Errorf("trace: bad span line: %w", err)
		}
		out = append(out, sp)
	}
	return out, sc.Err()
}

// report prints the per-phase quantile table and the top-K slowest
// requests. Quantiles here are exact (the full span set is in memory),
// unlike the bucketed upper bounds the live histograms give.
func report(w io.Writer, spans []telemetry.Span, topK int) {
	var ok, shed, errs int
	shards := make(map[int]int)
	for _, sp := range spans {
		shards[sp.Shard]++
		switch {
		case sp.Status == http.StatusOK:
			ok++
		case sp.Status == http.StatusServiceUnavailable:
			shed++
		default:
			errs++
		}
	}
	fmt.Fprintf(w, "%d spans: ok=%d shed=%d err=%d", len(spans), ok, shed, errs)
	if len(shards) > 1 {
		keys := make([]int, 0, len(shards))
		for k := range shards {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%d:%d", k, shards[k]))
		}
		fmt.Fprintf(w, " (shard:spans %s)", strings.Join(parts, " "))
	}
	fmt.Fprintf(w, "\n\n")

	phase := func(name, unit string, get func(telemetry.Span) int64) {
		vals := make([]int64, len(spans))
		for i, sp := range spans {
			vals[i] = get(sp)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		q := func(p float64) int64 { return vals[int(p*float64(len(vals)-1))] }
		var sum int64
		for _, v := range vals {
			sum += v
		}
		fmt.Fprintf(w, "%-12s %12d %12d %12d %12d %12d  %s\n",
			name, q(0.50), q(0.90), q(0.99), vals[len(vals)-1], sum/int64(len(vals)), unit)
	}
	fmt.Fprintf(w, "%-12s %12s %12s %12s %12s %12s\n", "phase", "p50", "p90", "p99", "max", "mean")
	phase("accept", "ns", func(sp telemetry.Span) int64 { return sp.AcceptNs })
	phase("queue", "ns", func(sp telemetry.Span) int64 { return sp.QueueNs })
	phase("marshal", "ns", func(sp telemetry.Span) int64 { return sp.MarshalNs })
	phase("exec-wall", "ns", func(sp telemetry.Span) int64 { return sp.ExecNs })
	phase("exec", "cycles", func(sp telemetry.Span) int64 { return int64(sp.ExecCycles) })
	phase("gc", "cycles", func(sp telemetry.Span) int64 { return int64(sp.GCCycles) })
	phase("total", "ns", func(sp telemetry.Span) int64 { return sp.TotalNs })

	if topK <= 0 {
		return
	}
	byTotal := make([]telemetry.Span, len(spans))
	copy(byTotal, spans)
	sort.Slice(byTotal, func(i, j int) bool { return byTotal[i].TotalNs > byTotal[j].TotalNs })
	if topK > len(byTotal) {
		topK = len(byTotal)
	}
	fmt.Fprintf(w, "\ntop %d slowest:\n", topK)
	for _, sp := range byTotal[:topK] {
		fmt.Fprintf(w, "  req=%d shard=%d route=%s pid=%d status=%d total=%dus queue=%dus marshal=%dus exec=%dcy gc=%dcy quanta=%d",
			sp.ID, sp.Shard, sp.Route, sp.Pid, sp.Status, sp.TotalNs/1000, sp.QueueNs/1000,
			sp.MarshalNs/1000, sp.ExecCycles, sp.GCCycles, sp.Quanta)
		if sp.Detail != "" {
			fmt.Fprintf(w, " detail=%q", sp.Detail)
		}
		fmt.Fprintln(w)
	}
}
