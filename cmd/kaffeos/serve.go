package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/serve"
)

// serveCmd runs the network serving plane: each route is an isolated
// KaffeOS process with its own heap and memlimit, fed by real HTTP
// traffic, spread over N engine shards (one VM per shard). Ctrl-C shuts
// down, prints per-tenant statistics, and audits every shard's books.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "TCP listen address")
	routes := fs.String("routes", "/zone0,/zone1,/zone2,/memhog:hog:1024",
		"route spec: path[:hog|servlet|warm|wide][:template][:lazy][:memKiB][:norestart], comma-separated")
	shards := fs.Int("shards", runtime.GOMAXPROCS(0),
		"engine shards, one VM per shard (default GOMAXPROCS); tenants spread least-loaded")
	work := fs.Int("work", 100, "per-request servlet work units")
	queueMax := fs.Int("queue", 0, "per-tenant request queue bound (0 = default 64)")
	inflight := fs.Int("inflight", 0, "per-tenant concurrent requests (0 = default 8)")
	engine := fs.String("engine", "jit-opt", "execution engine: interp | jit | jit-opt")
	codeCache := fs.Bool("codecache", false,
		"share JIT-compiled code across tenant processes: one content-addressed\n"+
			"artifact per (module, engine) pair, each sharer charged its full size")
	faultSpec := fs.String("faults", "", `arm fault injection (e.g. "seed=7,serve.dispatch=@100")`)
	telAddr := fs.String("http", "", "also serve the aggregated telemetry endpoint on this address")
	spans := fs.Bool("spans", false, "record per-request cost spans (view at /spans or with kaffeos trace)")
	memBudget := fs.String("membudget", "",
		"global memory budget (e.g. 64M): turn on the MemBalancer controller, which\n"+
			"redistributes the budget across tenant memlimits by the square-root rule\n"+
			"instead of keeping every tenant at its static per-route limit")
	flightDir := fs.String("flight", "", "write flight-recorder post-mortems to this directory on tenant death/shed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tenants, err := serve.ParseRoutes(*routes)
	if err != nil {
		return err
	}
	for i := range tenants {
		if tenants[i].WorkUnits == 0 {
			tenants[i].WorkUnits = *work
		}
		tenants[i].QueueMax = *queueMax
		tenants[i].MaxInflight = *inflight
	}
	var plane *faults.Plane
	if *faultSpec != "" {
		plan, err := faults.ParsePlan(*faultSpec)
		if err != nil {
			return err
		}
		plane = faults.NewPlane(plan)
	}
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			return err
		}
	}
	var budget uint64
	if *memBudget != "" {
		budget, err = parseSize(*memBudget)
		if err != nil {
			return fmt.Errorf("-membudget: %w", err)
		}
	}
	srv, err := serve.NewSharded(
		core.Config{Engine: core.EngineKind(*engine), Faults: plane, CodeCache: *codeCache},
		serve.Config{Shards: *shards, Place: serve.LeastLoaded, FlightDir: *flightDir, MemBudget: budget},
		tenants)
	if err != nil {
		return err
	}
	if *spans {
		for _, vm := range srv.VMs() {
			vm.Tel.Spans.SetEnabled(true)
		}
	}
	if *telAddr != "" {
		bound, err := srv.ServeTelemetry(*telAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "kaffeos: telemetry on http://%s (/procs /metrics /spans /trace /ps /audit /debug/pprof, shard-labelled)\n", bound)
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "kaffeos: serving on http://%s (/serve for stats), %d shard(s)\n", bound, srv.Shards())
	for _, tc := range tenants {
		role := "servlet"
		switch {
		case tc.Hog:
			role = "memhog"
		case tc.Warm:
			role = "warm"
		case tc.Wide:
			role = "wide"
		}
		fmt.Fprintf(os.Stderr, "kaffeos:   %-16s %-8s shard %d\n", tc.Route, role, srv.ShardOf(tc.Route))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "kaffeos: shutting down")
	if err := srv.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%-16s %-8s %5s %8s %8s %8s %8s %8s %8s %10s %10s\n",
		"ROUTE", "ROLE", "SHARD", "REQS", "OK", "SHED", "ERRS", "RESTARTS", "MIGR", "P50", "P99")
	for _, row := range srv.Rows() {
		fmt.Fprintf(os.Stderr, "%-16s %-8s %5d %8d %8d %8d %8d %8d %8d %9dus %9dus\n",
			row.Route, row.Role, row.Shard, row.Requests, row.OK, row.Shed, row.Errors,
			row.Restarts, row.Migrations, row.P50Ns/1000, row.P99Ns/1000)
	}
	for i, vm := range srv.VMs() {
		if rep := vm.Audit(true); !rep.OK() {
			return fmt.Errorf("post-shutdown audit failed on shard %d:\n%s", i, rep)
		}
	}
	fmt.Fprintf(os.Stderr, "kaffeos: post-shutdown audit ok on %d shard(s)\n", srv.Shards())
	return nil
}

// parseSize parses a byte size with an optional K/M/G suffix (KiB units).
func parseSize(s string) (uint64, error) {
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}
