package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchStripsProcsSuffix(t *testing.T) {
	p := writeTemp(t, "b.txt", `
goos: linux
BenchmarkFoo/sub-case-8         	 1000	  100.0 ns/op
BenchmarkFoo/sub-case-8         	 1000	  110.0 ns/op
BenchmarkBar                    	  200	 2000 ns/op	 12 model-cycles
PASS
`)
	got, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got["BenchmarkFoo/sub-case"].Ns) != 2 {
		t.Errorf("BenchmarkFoo/sub-case samples = %v, want 2 (procs suffix stripped, counts merged)", got["BenchmarkFoo/sub-case"].Ns)
	}
	if len(got["BenchmarkBar"].Ns) != 1 || got["BenchmarkBar"].Ns[0] != 2000 {
		t.Errorf("BenchmarkBar = %v", got["BenchmarkBar"].Ns)
	}
}

func TestParseBenchAllocs(t *testing.T) {
	p := writeTemp(t, "b.txt", `
BenchmarkMem-4      	 1000	  100.0 ns/op	  2048 B/op	      12 allocs/op
BenchmarkMem-4      	 1000	  110.0 ns/op	  2048 B/op	      14 allocs/op
BenchmarkNoMem-4    	 1000	  200.0 ns/op
BenchmarkMetric-4   	   50	  300.0 ns/op	       7.000 cache-hits	  512 B/op	       3 allocs/op
PASS
`)
	got, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	if a := got["BenchmarkMem"].Allocs; len(a) != 2 || a[0] != 12 || a[1] != 14 {
		t.Errorf("BenchmarkMem allocs = %v, want [12 14]", a)
	}
	if a := got["BenchmarkNoMem"].Allocs; len(a) != 0 {
		t.Errorf("BenchmarkNoMem allocs = %v, want none", a)
	}
	// Custom ReportMetric columns between ns/op and allocs/op must not
	// confuse the parser.
	if a := got["BenchmarkMetric"].Allocs; len(a) != 1 || a[0] != 3 {
		t.Errorf("BenchmarkMetric allocs = %v, want [3]", a)
	}
}

// A synthetic alloc regression with flat ns/op must trip the gate, and
// staying inside both thresholds must not.
func TestCompareGatesAllocs(t *testing.T) {
	old := map[string]*samples{
		"BenchmarkX": {Ns: []float64{100}, Allocs: []float64{100}},
	}
	flat := map[string]*samples{
		"BenchmarkX": {Ns: []float64{101}, Allocs: []float64{130}},
	}
	rows, regressions := compare(old, flat, 15, 15)
	if regressions != 1 || rows[0].Verdict != "regression(allocs)" {
		t.Fatalf("alloc regression not gated: %d regressions, verdict %q", regressions, rows[0].Verdict)
	}

	ok := map[string]*samples{
		"BenchmarkX": {Ns: []float64{101}, Allocs: []float64{110}},
	}
	if rows, regressions := compare(old, ok, 15, 15); regressions != 0 || rows[0].Verdict != "ok" {
		t.Fatalf("within-threshold change gated: %d regressions, verdict %q", regressions, rows[0].Verdict)
	}

	// Both dimensions over threshold: one regression, combined verdict.
	both := map[string]*samples{
		"BenchmarkX": {Ns: []float64{150}, Allocs: []float64{150}},
	}
	if rows, regressions := compare(old, both, 15, 15); regressions != 1 || rows[0].Verdict != "regression(ns,allocs)" {
		t.Fatalf("combined regression: %d regressions, verdict %q", regressions, rows[0].Verdict)
	}
}

// A baseline without -benchmem must keep gating ns/op and never gate
// allocs, whichever side lacks the samples.
func TestCompareAllocsNeedBothSides(t *testing.T) {
	old := map[string]*samples{"BenchmarkX": {Ns: []float64{100}}}
	fresh := map[string]*samples{"BenchmarkX": {Ns: []float64{101}, Allocs: []float64{9999}}}
	if _, regressions := compare(old, fresh, 15, 15); regressions != 0 {
		t.Fatalf("allocs gated with no baseline samples: %d regressions", regressions)
	}
	if _, regressions := compare(fresh, old, 15, 15); regressions != 0 {
		t.Fatalf("allocs gated with no candidate samples: %d regressions", regressions)
	}
}

// A zero-alloc baseline that starts allocating is a regression at any
// threshold.
func TestCompareZeroAllocBaseline(t *testing.T) {
	old := map[string]*samples{"BenchmarkX": {Ns: []float64{100}, Allocs: []float64{0}}}
	fresh := map[string]*samples{"BenchmarkX": {Ns: []float64{100}, Allocs: []float64{1}}}
	if rows, regressions := compare(old, fresh, 15, 15); regressions != 1 || rows[0].Verdict != "regression(allocs)" {
		t.Fatalf("zero-alloc baseline: %d regressions, verdict %q", regressions, rows[0].Verdict)
	}
	same := map[string]*samples{"BenchmarkX": {Ns: []float64{100}, Allocs: []float64{0}}}
	if _, regressions := compare(old, same, 15, 15); regressions != 0 {
		t.Fatalf("zero to zero gated: %d regressions", regressions)
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	p := writeTemp(t, "empty.txt", "no benchmarks here\n")
	if _, err := parseBench(p); err == nil {
		t.Fatal("want error for file with no benchmark lines")
	}
}

func TestParseHost(t *testing.T) {
	p := writeTemp(t, "b.txt", `
benchgate-host: cores=4 gomaxprocs=8
BenchmarkFoo-4	 1000	  100.0 ns/op
PASS
`)
	h, err := parseHost(p)
	if err != nil {
		t.Fatal(err)
	}
	if h == nil || h.Cores != 4 || h.GOMAXPROCS != 8 {
		t.Errorf("parseHost = %+v, want cores=4 gomaxprocs=8", h)
	}
	// The host line must not be mistaken for a benchmark sample.
	got, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got["BenchmarkFoo"].Ns) != 1 {
		t.Errorf("parseBench with host line = %v", got)
	}
}

func TestParseHostAbsent(t *testing.T) {
	p := writeTemp(t, "b.txt", "BenchmarkFoo	 1000	  100.0 ns/op\n")
	h, err := parseHost(p)
	if err != nil {
		t.Fatal(err)
	}
	if h != nil {
		t.Errorf("parseHost = %+v, want nil for a legacy baseline", h)
	}
}

func TestHostLineRoundTrips(t *testing.T) {
	p := writeTemp(t, "b.txt", HostLine()+"\n")
	h, err := parseHost(p)
	if err != nil {
		t.Fatal(err)
	}
	if h == nil || h.Cores <= 0 || h.GOMAXPROCS <= 0 {
		t.Errorf("HostLine round-trip = %+v", h)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
	// median must not reorder the caller's slice
	xs := []float64{3, 1, 2}
	median(xs)
	if xs[0] != 3 {
		t.Errorf("median mutated its input: %v", xs)
	}
}
