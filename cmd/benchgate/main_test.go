package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchStripsProcsSuffix(t *testing.T) {
	p := writeTemp(t, "b.txt", `
goos: linux
BenchmarkFoo/sub-case-8         	 1000	  100.0 ns/op
BenchmarkFoo/sub-case-8         	 1000	  110.0 ns/op
BenchmarkBar                    	  200	 2000 ns/op	 12 model-cycles
PASS
`)
	got, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got["BenchmarkFoo/sub-case"]) != 2 {
		t.Errorf("BenchmarkFoo/sub-case samples = %v, want 2 (procs suffix stripped, counts merged)", got["BenchmarkFoo/sub-case"])
	}
	if len(got["BenchmarkBar"]) != 1 || got["BenchmarkBar"][0] != 2000 {
		t.Errorf("BenchmarkBar = %v", got["BenchmarkBar"])
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	p := writeTemp(t, "empty.txt", "no benchmarks here\n")
	if _, err := parseBench(p); err == nil {
		t.Fatal("want error for file with no benchmark lines")
	}
}

func TestParseHost(t *testing.T) {
	p := writeTemp(t, "b.txt", `
benchgate-host: cores=4 gomaxprocs=8
BenchmarkFoo-4	 1000	  100.0 ns/op
PASS
`)
	h, err := parseHost(p)
	if err != nil {
		t.Fatal(err)
	}
	if h == nil || h.Cores != 4 || h.GOMAXPROCS != 8 {
		t.Errorf("parseHost = %+v, want cores=4 gomaxprocs=8", h)
	}
	// The host line must not be mistaken for a benchmark sample.
	got, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got["BenchmarkFoo"]) != 1 {
		t.Errorf("parseBench with host line = %v", got)
	}
}

func TestParseHostAbsent(t *testing.T) {
	p := writeTemp(t, "b.txt", "BenchmarkFoo	 1000	  100.0 ns/op\n")
	h, err := parseHost(p)
	if err != nil {
		t.Fatal(err)
	}
	if h != nil {
		t.Errorf("parseHost = %+v, want nil for a legacy baseline", h)
	}
}

func TestHostLineRoundTrips(t *testing.T) {
	p := writeTemp(t, "b.txt", HostLine()+"\n")
	h, err := parseHost(p)
	if err != nil {
		t.Fatal(err)
	}
	if h == nil || h.Cores <= 0 || h.GOMAXPROCS <= 0 {
		t.Errorf("HostLine round-trip = %+v", h)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
	// median must not reorder the caller's slice
	xs := []float64{3, 1, 2}
	median(xs)
	if xs[0] != 3 {
		t.Errorf("median mutated its input: %v", xs)
	}
}
