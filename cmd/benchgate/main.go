// Command benchgate is the CI benchmark regression gate: it compares two
// `go test -bench` outputs and fails when any benchmark's ns/op — or,
// when both files carry -benchmem output, allocs/op — regressed beyond a
// threshold.
//
// It exists because the gate must be hermetic — no tool installation on
// the critical path — and deterministic: for each benchmark name the
// median across -count repetitions is compared, which damps scheduler
// noise without hiding real regressions. benchstat (when available) is a
// nice display on top; benchgate is the arbiter.
//
// Usage:
//
//	go test -run '^$' -bench <tier1> -benchmem -count=6 . > new.txt
//	benchgate -baseline BENCH_baseline.txt -candidate new.txt -threshold 15
//
// Exit status 1 means at least one regression above the threshold.
// Benchmarks present in only one file are reported but never fail the
// gate (they are new or retired, not regressed); likewise allocs/op is
// gated only for benchmarks where both files report it, so a baseline
// recorded without -benchmem keeps gating ns/op. The trailing -N
// GOMAXPROCS suffix is stripped so baselines are portable across runners.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"

	"repro/internal/telemetry"
)

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)
	allocsRe  = regexp.MustCompile(`\s([0-9]+) allocs/op`)
)

// hostLine records the machine a bench file was produced on, e.g.
//
//	benchgate-host: cores=4 gomaxprocs=4
//
// The baseline carries one so the gate can tell when the runner's shape
// no longer matches the numbers it is gating against: ns/op measured on
// one core says nothing binding about a 4-core runner (and vice versa —
// parallel benchmarks shift with GOMAXPROCS), so on a core-count mismatch
// regressions are reported as warnings instead of failures.
var hostLine = regexp.MustCompile(`^benchgate-host:\s+cores=(\d+)\s+gomaxprocs=(\d+)`)

// benchHost is the parsed host line (nil when a file has none — old
// baselines stay valid and gate strictly).
type benchHost struct {
	Cores      int `json:"cores"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

// parseHost scans a bench output file for its benchgate-host line.
func parseHost(path string) (*benchHost, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := hostLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		cores, _ := strconv.Atoi(m[1])
		procs, _ := strconv.Atoi(m[2])
		return &benchHost{Cores: cores, GOMAXPROCS: procs}, nil
	}
	return nil, sc.Err()
}

// HostLine renders the host line for appending to a fresh baseline.
func HostLine() string {
	h := telemetry.Host()
	return fmt.Sprintf("benchgate-host: cores=%d gomaxprocs=%d", h.Cores, h.GOMAXPROCS)
}

// samples holds one benchmark's measurements across -count repetitions.
// Allocs is empty when the file was produced without -benchmem.
type samples struct {
	Ns     []float64
	Allocs []float64
}

// parseBench collects ns/op (and, with -benchmem, allocs/op) samples per
// benchmark name from one `go test -bench` output file.
func parseBench(path string) (map[string]*samples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]*samples)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		s := out[m[1]]
		if s == nil {
			s = &samples{}
			out[m[1]] = s
		}
		s.Ns = append(s.Ns, v)
		if am := allocsRe.FindStringSubmatch(line); am != nil {
			if a, err := strconv.ParseFloat(am[1], 64); err == nil {
				s.Allocs = append(s.Allocs, a)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark results in %s", path)
	}
	return out, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Row is one benchmark's comparison, also emitted to the -json artifact.
// The alloc fields are zero/absent when either file lacks -benchmem data
// for the benchmark.
type Row struct {
	Name           string  `json:"name"`
	OldNs          float64 `json:"old_ns"`
	NewNs          float64 `json:"new_ns"`
	DeltaPct       float64 `json:"delta_pct"`
	OldAllocs      float64 `json:"old_allocs,omitempty"`
	NewAllocs      float64 `json:"new_allocs,omitempty"`
	AllocsDeltaPct float64 `json:"allocs_delta_pct,omitempty"`
	Verdict        string  `json:"verdict"` // ok | regression | regression(allocs) | regression(ns,allocs) | new | retired
}

// compare builds the per-benchmark rows and counts regressions. ns/op
// gates at thresholdPct; allocs/op gates at allocThresholdPct, but only
// for benchmarks where both files carry alloc samples.
func compare(old, fresh map[string]*samples, thresholdPct, allocThresholdPct float64) ([]Row, int) {
	names := make([]string, 0, len(old)+len(fresh))
	seen := make(map[string]bool)
	for n := range old {
		names = append(names, n)
		seen[n] = true
	}
	for n := range fresh {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	var rows []Row
	regressions := 0
	for _, name := range names {
		o, haveOld := old[name]
		n, haveNew := fresh[name]
		switch {
		case !haveOld:
			rows = append(rows, Row{Name: name, NewNs: median(n.Ns), Verdict: "new"})
		case !haveNew:
			rows = append(rows, Row{Name: name, OldNs: median(o.Ns), Verdict: "retired"})
		default:
			om, nm := median(o.Ns), median(n.Ns)
			r := Row{Name: name, OldNs: om, NewNs: nm, DeltaPct: (nm - om) / om * 100}
			nsBad := r.DeltaPct > thresholdPct
			allocsBad := false
			if len(o.Allocs) > 0 && len(n.Allocs) > 0 {
				oa, na := median(o.Allocs), median(n.Allocs)
				r.OldAllocs, r.NewAllocs = oa, na
				switch {
				case oa > 0:
					r.AllocsDeltaPct = (na - oa) / oa * 100
					allocsBad = r.AllocsDeltaPct > allocThresholdPct
				case na > 0:
					// A zero-alloc baseline that now allocates is an
					// unbounded relative regression.
					r.AllocsDeltaPct = 100
					allocsBad = true
				}
			}
			switch {
			case nsBad && allocsBad:
				r.Verdict = "regression(ns,allocs)"
			case nsBad:
				r.Verdict = "regression"
			case allocsBad:
				r.Verdict = "regression(allocs)"
			default:
				r.Verdict = "ok"
			}
			if nsBad || allocsBad {
				regressions++
			}
			rows = append(rows, r)
		}
	}
	return rows, regressions
}

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.txt", "committed baseline bench output")
	candidate := flag.String("candidate", "", "fresh bench output to gate")
	threshold := flag.Float64("threshold", 15, "fail when ns/op grows more than this percent")
	allocThreshold := flag.Float64("allocthreshold", 15, "fail when allocs/op grows more than this percent (gated only when both files carry -benchmem output)")
	jsonPath := flag.String("json", "", "write the comparison (with host info) to this file")
	printHost := flag.Bool("host-line", false, "print this machine's benchgate-host line and exit (append it to a fresh baseline)")
	flag.Parse()
	if *printHost {
		fmt.Println(HostLine())
		return
	}
	if *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -candidate is required")
		os.Exit(2)
	}
	old, err := parseBench(*baseline)
	if err != nil {
		fail(err)
	}
	fresh, err := parseBench(*candidate)
	if err != nil {
		fail(err)
	}
	baseHost, err := parseHost(*baseline)
	if err != nil {
		fail(err)
	}
	// Core-count mismatch between the baseline host and this runner means
	// the baseline's ns/op are not binding here: regressions demote to
	// warnings. A baseline without a host line gates strictly (legacy).
	runnerCores := telemetry.Host().Cores
	hostMismatch := baseHost != nil && baseHost.Cores != runnerCores

	rows, regressions := compare(old, fresh, *threshold, *allocThreshold)

	fmt.Printf("%-55s %14s %14s %8s %15s %8s  %s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "allocs/op", "delta", "verdict")
	for _, r := range rows {
		allocs, adelta := "-", "-"
		if r.OldAllocs > 0 || r.NewAllocs > 0 {
			allocs = fmt.Sprintf("%.0f→%.0f", r.OldAllocs, r.NewAllocs)
			adelta = fmt.Sprintf("%+.1f%%", r.AllocsDeltaPct)
		}
		fmt.Printf("%-55s %14.2f %14.2f %+7.1f%% %15s %8s  %s\n",
			r.Name, r.OldNs, r.NewNs, r.DeltaPct, allocs, adelta, r.Verdict)
	}

	if *jsonPath != "" {
		artifact := struct {
			Host              telemetry.HostInfo `json:"host"`
			BaselineHost      *benchHost         `json:"baseline_host,omitempty"`
			HostMismatch      bool               `json:"host_mismatch"`
			ThresholdPct      float64            `json:"threshold_pct"`
			AllocThresholdPct float64            `json:"alloc_threshold_pct"`
			Regressions       int                `json:"regressions"`
			Rows              []Row              `json:"rows"`
		}{telemetry.Host(), baseHost, hostMismatch, *threshold, *allocThreshold, regressions, rows}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(artifact); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}

	switch {
	case regressions > 0 && hostMismatch:
		fmt.Fprintf(os.Stderr,
			"benchgate: WARNING: %d benchmark(s) over the threshold (ns>%.0f%% or allocs>%.0f%%), but the baseline was recorded on %d core(s) and this runner has %d — numbers are not comparable, warning instead of failing\n",
			regressions, *threshold, *allocThreshold, baseHost.Cores, runnerCores)
		fmt.Fprintln(os.Stderr, "benchgate: refresh the baseline on a matching host (append `benchgate -host-line` output) to re-arm the gate")
	case regressions > 0:
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed (ns/op>%.0f%% or allocs/op>%.0f%%)\n",
			regressions, *threshold, *allocThreshold)
		os.Exit(1)
	default:
		fmt.Printf("benchgate: ok (%d benchmarks within thresholds)\n", len(rows))
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(2)
}
