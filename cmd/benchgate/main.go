// Command benchgate is the CI benchmark regression gate: it compares two
// `go test -bench` outputs and fails when any benchmark's ns/op regressed
// beyond a threshold.
//
// It exists because the gate must be hermetic — no tool installation on
// the critical path — and deterministic: for each benchmark name the
// median across -count repetitions is compared, which damps scheduler
// noise without hiding real regressions. benchstat (when available) is a
// nice display on top; benchgate is the arbiter.
//
// Usage:
//
//	go test -run '^$' -bench <tier1> -count=6 . > new.txt
//	benchgate -baseline BENCH_baseline.txt -candidate new.txt -threshold 15
//
// Exit status 1 means at least one regression above the threshold.
// Benchmarks present in only one file are reported but never fail the
// gate (they are new or retired, not regressed). The trailing -N
// GOMAXPROCS suffix is stripped so baselines are portable across runners.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"

	"repro/internal/telemetry"
)

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench collects ns/op samples per benchmark name from one
// `go test -bench` output file.
func parseBench(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[m[1]] = append(out[m[1]], v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark results in %s", path)
	}
	return out, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Row is one benchmark's comparison, also emitted to the -json artifact.
type Row struct {
	Name     string  `json:"name"`
	OldNs    float64 `json:"old_ns"`
	NewNs    float64 `json:"new_ns"`
	DeltaPct float64 `json:"delta_pct"`
	Verdict  string  `json:"verdict"` // ok | regression | new | retired
}

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.txt", "committed baseline bench output")
	candidate := flag.String("candidate", "", "fresh bench output to gate")
	threshold := flag.Float64("threshold", 15, "fail when ns/op grows more than this percent")
	jsonPath := flag.String("json", "", "write the comparison (with host info) to this file")
	flag.Parse()
	if *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -candidate is required")
		os.Exit(2)
	}
	old, err := parseBench(*baseline)
	if err != nil {
		fail(err)
	}
	fresh, err := parseBench(*candidate)
	if err != nil {
		fail(err)
	}

	names := make([]string, 0, len(old)+len(fresh))
	seen := make(map[string]bool)
	for n := range old {
		names = append(names, n)
		seen[n] = true
	}
	for n := range fresh {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	var rows []Row
	regressions := 0
	for _, name := range names {
		o, haveOld := old[name]
		n, haveNew := fresh[name]
		switch {
		case !haveOld:
			rows = append(rows, Row{Name: name, NewNs: median(n), Verdict: "new"})
		case !haveNew:
			rows = append(rows, Row{Name: name, OldNs: median(o), Verdict: "retired"})
		default:
			om, nm := median(o), median(n)
			delta := (nm - om) / om * 100
			verdict := "ok"
			if delta > *threshold {
				verdict = "regression"
				regressions++
			}
			rows = append(rows, Row{Name: name, OldNs: om, NewNs: nm, DeltaPct: delta, Verdict: verdict})
		}
	}

	fmt.Printf("%-55s %14s %14s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "verdict")
	for _, r := range rows {
		fmt.Printf("%-55s %14.2f %14.2f %+7.1f%%  %s\n", r.Name, r.OldNs, r.NewNs, r.DeltaPct, r.Verdict)
	}

	if *jsonPath != "" {
		artifact := struct {
			Host         telemetry.HostInfo `json:"host"`
			ThresholdPct float64            `json:"threshold_pct"`
			Regressions  int                `json:"regressions"`
			Rows         []Row              `json:"rows"`
		}{telemetry.Host(), *threshold, regressions, rows}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(artifact); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}

	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed more than %.0f%%\n", regressions, *threshold)
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok (%d benchmarks within %.0f%%)\n", len(rows), *threshold)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(2)
}
