// Command specbench regenerates the paper's Figure 3 and Table 1: the
// SPEC-JVM98-like workload suite across execution platforms and write-
// barrier configurations.
//
// Usage:
//
//	specbench -experiment fig3      # Figure 3: wall time per platform
//	specbench -experiment table1    # Table 1: barriers executed per benchmark
//	specbench -experiment overhead  # §4.1 headline: total barrier cost vs no-barrier
//	specbench -experiment classes   # §3.2: shared vs reloaded library census
//	specbench -experiment micro     # §4.1: cycles per barrier check
//	specbench -workload db          # restrict to one workload
//	specbench -repeats 3            # measurement repetitions (fig3)
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/barrier"
	"repro/internal/classlib"
	"repro/internal/spec"
)

func main() {
	experiment := flag.String("experiment", "fig3", "fig3 | table1 | overhead | classes | micro")
	workload := flag.String("workload", "", "run a single workload by name")
	repeats := flag.Int("repeats", 3, "repetitions per fig3 measurement")
	flag.Parse()

	workloads := spec.All()
	if *workload != "" {
		w, ok := spec.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "specbench: unknown workload %q\n", *workload)
			os.Exit(2)
		}
		workloads = []*spec.Workload{w}
	}

	var err error
	switch *experiment {
	case "fig3":
		err = figure3(workloads, *repeats)
	case "table1":
		err = table1(workloads)
	case "overhead":
		err = overhead(workloads)
	case "classes":
		err = classes()
	case "micro":
		err = micro()
	default:
		fmt.Fprintf(os.Stderr, "specbench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "specbench: %v\n", err)
		os.Exit(1)
	}
}

// figure3 prints wall-clock seconds per (platform, workload), the paper's
// Figure 3 (its y axis is seconds per benchmark, grouped by platform).
func figure3(workloads []*spec.Workload, repeats int) error {
	platforms := spec.Platforms()
	fmt.Println("Figure 3: SPEC-like workloads on various platforms (wall milliseconds, best of repeats)")
	fmt.Printf("%-26s", "platform")
	for _, w := range workloads {
		fmt.Printf("%12s", w.Name)
	}
	fmt.Println()
	for _, p := range platforms {
		fmt.Printf("%-26s", p.Name)
		for _, w := range workloads {
			best := time.Duration(0)
			for r := 0; r < repeats; r++ {
				res, err := spec.Run(w, p)
				if err != nil {
					return err
				}
				if best == 0 || res.Wall < best {
					best = res.Wall
				}
			}
			fmt.Printf("%12.1f", float64(best.Microseconds())/1000)
		}
		fmt.Println()
	}
	return nil
}

// table1 prints the barrier census per workload with the paper's cost
// model: time at 41 cycles per barrier (the No Heap Pointer cost) as a
// percentage of the no-barrier execution time.
func table1(workloads []*spec.Workload) error {
	noBar, _ := spec.PlatformByName("KaffeOS-NoWriteBarrier")
	withBar, _ := spec.PlatformByName("KaffeOS-NoHeapPointer")
	fmt.Println("Table 1: write barriers executed per benchmark")
	fmt.Printf("%-12s %14s %16s %10s\n", "benchmark", "barriers", "cycles@41/bar", "percent")
	for _, w := range workloads {
		base, err := spec.Run(w, noBar)
		if err != nil {
			return err
		}
		res, err := spec.Run(w, withBar)
		if err != nil {
			return err
		}
		barrierCycles := res.Barriers * uint64(barrier.NoHeapPointer.CheckCost())
		pct := 100 * float64(barrierCycles) / float64(base.Cycles)
		fmt.Printf("%-12s %14d %16d %9.2f%%\n", w.Name, res.Barriers, barrierCycles, pct)
	}
	return nil
}

// overhead prints the §4.1 headline: total cost of each barrier
// configuration relative to the no-barrier KaffeOS baseline ("the total
// cost of the write barrier is about 11%").
func overhead(workloads []*spec.Workload) error {
	base, _ := spec.PlatformByName("KaffeOS-NoWriteBarrier")
	configs := []string{"KaffeOS-HeapPointer", "KaffeOS-NoHeapPointer", "KaffeOS-FakeHeapPointer"}
	fmt.Println("Barrier overhead vs KaffeOS-NoWriteBarrier (simulated cycles, geometric mean)")
	fmt.Printf("%-26s %10s\n", "configuration", "overhead")
	for _, name := range configs {
		p, _ := spec.PlatformByName(name)
		prod := 1.0
		for _, w := range workloads {
			b, err := spec.Run(w, base)
			if err != nil {
				return err
			}
			r, err := spec.Run(w, p)
			if err != nil {
				return err
			}
			prod *= float64(r.Cycles) / float64(b.Cycles)
		}
		geo := pow(prod, 1/float64(len(workloads)))
		fmt.Printf("%-26s %9.1f%%\n", name, (geo-1)*100)
	}
	return nil
}

func pow(x, y float64) float64 { return math.Pow(x, y) }

// classes prints the §3.2 census: how many library classes are shared vs
// reloaded (paper: 430 of ~600, 72%).
func classes() error {
	lib := classlib.New()
	shared, reloaded, pct := lib.Census()
	fmt.Printf("Library class census (paper §3.2):\n")
	fmt.Printf("  shared:   %3d classes\n", shared)
	fmt.Printf("  reloaded: %3d classes\n", reloaded)
	fmt.Printf("  shared fraction: %.0f%% (paper: 72%%)\n", pct)
	fmt.Printf("\nreloaded classes (per-process statics force the copy):\n")
	for _, n := range lib.ReloadedClassNames() {
		fmt.Printf("  %s\n", n)
	}
	return nil
}

// micro prints the per-barrier costs of §4.1.
func micro() error {
	fmt.Println("Write-barrier implementations (paper §4.1):")
	fmt.Printf("%-18s %8s %14s\n", "barrier", "cycles", "header bytes")
	for _, b := range barrier.All() {
		fmt.Printf("%-18s %8d %14d\n", b.Name(), b.CheckCost(), b.HeaderExtra())
	}
	return nil
}
