// Pipeline: a parent process fans work out to worker processes through a
// shared heap, synchronizing on the shared object "in the usual way" (§2)
// — monitors work on shared objects; only their reference fields are
// frozen. Workers claim slots from a shared int array under its monitor,
// compute, and write results back into the primitive elements; the parent
// waits for every child with the waitpid-style Kernel.waitFor syscall and
// then reduces the results.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/kaffeos"
)

// Shared array layout: [0] next unclaimed slot, [1] unused, [2..17] data.
const workerSrc = `
.class app/Worker
.method main ()V static
.locals 3
.stack 4
	ldc "work"
	invokestatic kaffeos/Shared.lookup (Ljava/lang/String;)Ljava/lang/Object;
	checkcast [I
	astore 0
CLAIM:	aload 0
	monitorenter
	aload 0
	iconst 0
	iaload
	istore 1
	aload 0
	iconst 0
	iload 1
	iconst 1
	iadd
	iastore
	aload 0
	monitorexit
	iload 1
	aload 0
	arraylength
	if_icmpge DONE
# compute: cube the slot's value in place
	aload 0
	iload 1
	iaload
	istore 2
	aload 0
	iload 1
	iload 2
	iload 2
	imul
	iload 2
	imul
	iastore
	goto CLAIM
DONE:	return
.end
.end`

const parentSrc = `
.class app/Parent
.method main ()V static
.locals 4
.stack 6
# build and freeze the shared work array
	ldc "work"
	ldc 64
	invokestatic kaffeos/Shared.create (Ljava/lang/String;I)V
	ldc 18
	newarray [I
	astore 0
	aload 0
	iconst 0
	iconst 2
	iastore
	iconst 2
	istore 1
FILL:	iload 1
	ldc 18
	if_icmpge SEAL
	aload 0
	iload 1
	iload 1
	iastore
	iinc 1 1
	goto FILL
SEAL:	aload 0
	invokestatic kaffeos/Shared.setRoot (Ljava/lang/Object;)V
	ldc "work"
	invokestatic kaffeos/Shared.freeze (Ljava/lang/String;)V
# fan out three workers
	iconst 0
	istore 1
	iconst 3
	newarray [I
	astore 2
SPAWN:	iload 1
	iconst 3
	if_icmpge WAIT
	aload 2
	iload 1
	ldc "worker"
	ldc "app/Worker"
	ldc 2048
	invokestatic kaffeos/Kernel.spawn (Ljava/lang/String;Ljava/lang/String;I)I
	iastore
	iinc 1 1
	goto SPAWN
# wait for each worker
WAIT:	iconst 0
	istore 1
JOIN:	iload 1
	iconst 3
	if_icmpge REDUCE
	aload 2
	iload 1
	iaload
	invokestatic kaffeos/Kernel.waitFor (I)V
	iinc 1 1
	goto JOIN
# reduce: sum the cubes
REDUCE:	iconst 0
	istore 1
	iconst 2
	istore 3
SUM:	iload 3
	ldc 18
	if_icmpge OUT
	iload 1
	aload 0
	iload 3
	iaload
	iadd
	istore 1
	iinc 3 1
	goto SUM
OUT:	getstatic java/lang/System.out Ljava/io/PrintStream;
	ldc "sum of cubes 2..17 ="
	invokevirtual java/io/PrintStream.println (Ljava/lang/String;)V
	getstatic java/lang/System.out Ljava/io/PrintStream;
	iload 1
	invokevirtual java/io/PrintStream.printlnInt (I)V
	return
.end
.end`

func main() {
	vm, err := kaffeos.New(kaffeos.Config{Stdout: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	if err := vm.RegisterProgram("worker", workerSrc); err != nil {
		log.Fatal(err)
	}
	parent, err := vm.NewProcess("parent", kaffeos.ProcessConfig{MemLimit: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	if err := parent.LoadSource(parentSrc); err != nil {
		log.Fatal(err)
	}
	if _, err := parent.Start("app/Parent"); err != nil {
		log.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		log.Fatal(err)
	}
	// Expected: sum of n^3 for n in 2..17 = (17*18/2)^2 - 1 = 23408.
	fmt.Printf("(expected 23408; all worker processes reclaimed, kernel heap %d bytes)\n",
		vm.KernelHeapBytes())
}
