// Netserve: the paper's MemHog experiment over a real socket. Four
// tenants — three well-behaved servlet processes and one MemHog with its
// admission high-water disabled — serve concurrent HTTP traffic. The hog
// walks into its memlimit and is killed and restarted, repeatedly, while
// the neighbours answer every single request with 200.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	requests := flag.Int("requests", 4000, "total requests to drive")
	clients := flag.Int("clients", 16, "concurrent client connections")
	flag.Parse()

	vm, err := core.NewVM(core.Config{Engine: core.EngineJITOpt})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.New(vm, serve.Config{}, []serve.TenantConfig{
		{Route: "/zone0"},
		{Route: "/zone1"},
		{Route: "/zone2"},
		// ShedFraction -1 disables the graceful high-water shed, so the
		// hog runs straight into its memlimit: the kernel kill is the
		// isolation boundary under test.
		{Route: "/memhog", Hog: true, MemKB: 1024, ShedFraction: -1},
	})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	base := "http://" + addr
	fmt.Printf("netserve: 3 servlet zones + 1 MemHog on %s, %d requests, %d clients\n",
		base, *requests, *clients)

	routes := []string{"/zone0", "/zone1", "/zone2", "/memhog"}
	var neighbourErrs, hogFailures atomic.Uint64
	var next atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= *requests {
					return
				}
				route := routes[i%len(routes)]
				resp, err := http.Post(base+route, "text/plain", strings.NewReader("payload"))
				if err != nil {
					neighbourErrs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					if route == "/memhog" {
						hogFailures.Add(1)
					} else {
						neighbourErrs.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()

	rows := srv.Rows()
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-10s %-8s %8s %8s %8s %8s %9s\n",
		"route", "role", "requests", "ok", "shed", "errors", "restarts")
	for _, r := range rows {
		fmt.Printf("%-10s %-8s %8d %8d %8d %8d %9d\n",
			r.Route, r.Role, r.Requests, r.OK, r.Shed, r.Errors, r.Restarts)
	}
	fmt.Println()
	var restarts uint64
	for _, r := range rows {
		if r.Role == "memhog" {
			restarts = r.Restarts
		}
	}
	switch {
	case neighbourErrs.Load() > 0:
		log.Fatalf("FAIL: neighbours saw %d errors — isolation violated", neighbourErrs.Load())
	case restarts == 0:
		log.Fatal("FAIL: the MemHog never died — nothing was demonstrated")
	default:
		fmt.Printf("the MemHog was killed by its memlimit and restarted %d times\n", restarts)
		fmt.Printf("(%d of its requests failed or were shed); the neighbours answered\n", hogFailures.Load())
		fmt.Println("every request with 200 — kernel isolation held under real traffic.")
	}
	if rep := vm.Audit(true); !rep.OK() {
		log.Fatalf("FAIL: post-run audit:\n%s", rep)
	}
	fmt.Println("post-run kernel audit: all invariants hold.")
}
