// Servletfarm: a small server farm on one KaffeOS VM, reproducing the
// paper's §4.2 setup end to end — many servlet zones, one process each,
// a client load of requests, and a MemHog in the mix.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/jserv"
)

func main() {
	zones := flag.Int("zones", 6, "number of well-behaved servlet zones")
	requests := flag.Uint64("requests", 200, "requests each zone must answer")
	hog := flag.Bool("memhog", true, "include a MemHog zone")
	flag.Parse()

	vm, err := core.NewVM(core.Config{Engine: core.EngineJITOpt})
	if err != nil {
		log.Fatal(err)
	}
	eng := jserv.NewEngine(vm)
	for i := 0; i < *zones; i++ {
		if _, err := eng.AddServlet(fmt.Sprintf("zone-%02d", i), 2048); err != nil {
			log.Fatal(err)
		}
	}
	if *hog {
		if _, err := eng.AddMemHog("memhog", 512); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("farm: %d zones, memhog=%v, %d requests per zone\n", *zones, *hog, *requests)
	ms, err := eng.ServeUntil(*requests, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served in %d virtual ms (%.1f virtual req/s aggregate)\n",
		ms, float64(*requests)*float64(*zones)*1000/float64(ms+1))
	fmt.Printf("%-10s %-8s %10s %9s\n", "zone", "role", "handled", "restarts")
	for _, s := range eng.Servlets() {
		role := "servlet"
		if s.Hog {
			role = "memhog"
		}
		fmt.Printf("%-10s %-8s %10d %9d\n", s.Name, role, s.Handled(), s.Restarts())
	}
	fmt.Printf("\nVM after run: kernel heap %d bytes, %d live processes\n",
		vm.KernelHeap.Bytes(), len(vm.Processes()))
	fmt.Println("(the memhog's restarts are its OutOfMemoryError deaths — nobody else noticed)")
}
