// Sharing: direct inter-process communication through a shared heap (§2).
//
// A producer process creates a shared heap, populates it with an int
// array, sets the root, and freezes it. A consumer looks the heap up by
// name (paying the full size against its own memlimit), reads the data,
// and writes results back into the array's primitive elements — reference
// fields of frozen shared objects are immutable, primitive fields are the
// communication channel. A third process demonstrates the segmentation
// violation raised when it tries to smuggle a local reference into the
// shared heap.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/kaffeos"
)

const producerSrc = `
.class app/Producer
.method main ()V static
.locals 1
.stack 4
	getstatic java/lang/System.out Ljava/io/PrintStream;
	ldc "producer: creating shared heap 'channel'"
	invokevirtual java/io/PrintStream.println (Ljava/lang/String;)V
	ldc "channel"
	ldc 64
	invokestatic kaffeos/Shared.create (Ljava/lang/String;I)V
	iconst 16
	newarray [I
	astore 0
# fill slots 0..15 with squares
	iconst 0
	istore 0
	goto FILLSETUP
FILLSETUP:	iconst 16
	newarray [I
	astore 0
	iconst 0
	putstatic app/Producer.idx I
FILL:	getstatic app/Producer.idx I
	iconst 16
	if_icmpge SEAL
	aload 0
	getstatic app/Producer.idx I
	getstatic app/Producer.idx I
	getstatic app/Producer.idx I
	imul
	iastore
	getstatic app/Producer.idx I
	iconst 1
	iadd
	putstatic app/Producer.idx I
	goto FILL
SEAL:	aload 0
	invokestatic kaffeos/Shared.setRoot (Ljava/lang/Object;)V
	ldc "channel"
	invokestatic kaffeos/Shared.freeze (Ljava/lang/String;)V
	getstatic java/lang/System.out Ljava/io/PrintStream;
	ldc "producer: frozen; waiting for the consumer"
# wait until the consumer writes the answer into slot 0
	invokevirtual java/io/PrintStream.println (Ljava/lang/String;)V
	ldc "channel"
	invokestatic kaffeos/Shared.lookup (Ljava/lang/String;)Ljava/lang/Object;
	checkcast [I
	astore 0
WAIT:	aload 0
	iconst 0
	iaload
	ifge WAIT
	getstatic java/lang/System.out Ljava/io/PrintStream;
	ldc "producer: consumer replied with"
	invokevirtual java/io/PrintStream.println (Ljava/lang/String;)V
	getstatic java/lang/System.out Ljava/io/PrintStream;
	aload 0
	iconst 0
	iaload
	ineg
	invokevirtual java/io/PrintStream.printlnInt (I)V
	return
.end
.static idx I
.end`

const consumerSrc = `
.class app/Consumer
.method main ()V static
.locals 3
.stack 4
	ldc "channel"
	invokestatic kaffeos/Shared.lookup (Ljava/lang/String;)Ljava/lang/Object;
	checkcast [I
	astore 0
# sum the squares the producer left for us
	iconst 0
	istore 1
	iconst 1
	istore 2
SUM:	iload 2
	iconst 16
	if_icmpge DONE
	iload 1
	aload 0
	iload 2
	iaload
	iadd
	istore 1
	iinc 2 1
	goto SUM
# reply in slot 0 (negative marks "answered")
DONE:	aload 0
	iconst 0
	iload 1
	ineg
	iastore
	getstatic java/lang/System.out Ljava/io/PrintStream;
	ldc "consumer: sum of squares written back"
	invokevirtual java/io/PrintStream.println (Ljava/lang/String;)V
	return
.end
.end`

const intruderSrc = `
.class app/Intruder
.method main ()V static
.locals 2
.stack 3
	ldc "channel"
	invokestatic kaffeos/Shared.lookup (Ljava/lang/String;)Ljava/lang/Object;
	astore 0
	new java/util/ListNode
	dup
	invokespecial java/util/ListNode.<init> ()V
	astore 1
T0:	aload 1
	aload 0
	putfield java/util/ListNode.item Ljava/lang/Object;
# storing INTO our own object is fine (user -> shared ref)...
	aload 0
	checkcast [I
	pop
# ...but a frozen shared object's ref fields are immutable; prove it:
	getstatic java/lang/System.out Ljava/io/PrintStream;
	ldc "intruder: user->shared reference is legal"
	invokevirtual java/io/PrintStream.println (Ljava/lang/String;)V
	return
T1:	pop
	getstatic java/lang/System.out Ljava/io/PrintStream;
	ldc "intruder: segmentation violation!"
	invokevirtual java/io/PrintStream.println (Ljava/lang/String;)V
	return
.catch kaffeos/SegmentationViolationError T0 T1 T1
.end
.end`

func main() {
	vm, err := kaffeos.New(kaffeos.Config{Stdout: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	producer, err := vm.NewProcess("producer", kaffeos.ProcessConfig{MemLimit: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	if err := producer.LoadSource(producerSrc); err != nil {
		log.Fatal(err)
	}
	if _, err := producer.Start("app/Producer"); err != nil {
		log.Fatal(err)
	}
	// Let the producer create and freeze the heap.
	if err := vm.RunFor(3_000_000); err != nil {
		log.Fatal(err)
	}

	consumer, err := vm.NewProcess("consumer", kaffeos.ProcessConfig{MemLimit: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	if err := consumer.LoadSource(consumerSrc); err != nil {
		log.Fatal(err)
	}
	if _, err := consumer.Start("app/Consumer"); err != nil {
		log.Fatal(err)
	}
	intruder, err := vm.NewProcess("intruder", kaffeos.ProcessConfig{MemLimit: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	if err := intruder.LoadSource(intruderSrc); err != nil {
		log.Fatal(err)
	}
	if _, err := intruder.Start("app/Intruder"); err != nil {
		log.Fatal(err)
	}

	if err := vm.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall processes exited; producer residual charge: %d bytes\n", producer.MemUse())
	fmt.Printf("orphaned shared heap reclaimed; kernel heap: %d bytes\n", vm.KernelHeapBytes())
}
