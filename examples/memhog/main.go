// MemHog: the paper's denial-of-service experiment in miniature (§4.2).
//
// Two deployments of the same workload — three well-behaved servlets plus
// a MemHog that allocates without bound:
//
//  1. KaffeOS-style: each servlet in its own process with its own
//     memlimit. The MemHog dies with OutOfMemoryError over and over; the
//     supervisor restarts it; the other servlets never notice.
//  2. Single-process (an "IBM/n"-style shared JVM): every servlet as a
//     thread in ONE process with one heap. The MemHog's allocations kill
//     the whole process — all servlets die with it.
package main

import (
	"fmt"
	"log"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/jserv"
)

func main() {
	isolated()
	sharedFate()
}

func isolated() {
	fmt.Println("=== KaffeOS: one process per servlet ===")
	vm, err := core.NewVM(core.Config{Engine: core.EngineJITOpt})
	if err != nil {
		log.Fatal(err)
	}
	eng := jserv.NewEngine(vm)
	for i := 0; i < 3; i++ {
		if _, err := eng.AddServlet(fmt.Sprintf("servlet-%d", i), 2048); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := eng.AddMemHog("memhog", 384); err != nil {
		log.Fatal(err)
	}
	ms, err := eng.ServeUntil(100, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all servlets answered 100 requests in %d virtual ms\n", ms)
	for _, s := range eng.Servlets() {
		fmt.Printf("  %-10s handled=%-5d restarts=%d\n", s.Name, s.Handled(), s.Restarts())
	}
	fmt.Printf("  kernel heap after the storm: %d bytes\n\n", vm.KernelHeap.Bytes())
}

const sharedFateSrc = `
.class app/Worker extends java/lang/Thread
.static done I
.method <init> ()V
.locals 1
.stack 1
	aload 0
	invokespecial java/lang/Thread.<init> ()V
	return
.end
.method run ()V
.locals 2
.stack 3
	iconst 0
	istore 1
L0:	iload 1
	ldc 100000
	if_icmpge L1
	iinc 1 1
	goto L0
L1:	getstatic app/Worker.done I
	iconst 1
	iadd
	putstatic app/Worker.done I
	return
.end
.end
.class app/Main
.method main ()V static
.locals 2
.stack 3
# start three workers
	iconst 0
	istore 0
L0:	iload 0
	iconst 3
	if_icmpge HOG
	new app/Worker
	dup
	invokespecial app/Worker.<init> ()V
	invokevirtual java/lang/Thread.start ()V
	iinc 0 1
	goto L0
# ... and then hog memory in the main thread
HOG:	new java/util/Vector
	dup
	invokespecial java/util/Vector.<init> ()V
	astore 1
L1:	aload 1
	ldc 2048
	newarray [I
	invokevirtual java/util/Vector.add (Ljava/lang/Object;)V
	goto L1
.end
.end`

func sharedFate() {
	fmt.Println("=== Shared fate: all servlets as threads in one process ===")
	vm, err := core.NewVM(core.Config{Engine: core.EngineJITOpt})
	if err != nil {
		log.Fatal(err)
	}
	p, err := vm.NewProcess("shared-jvm", core.ProcessOptions{MemLimit: 2 << 20})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Load(bytecode.MustAssemble(sharedFateSrc)); err != nil {
		log.Fatal(err)
	}
	if _, err := p.Spawn("app/Main", "main()V"); err != nil {
		log.Fatal(err)
	}
	if err := vm.Run(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("process state: %v\n", p.State())
	if u := p.Uncaught(); u != nil {
		fmt.Printf("killed by: %s\n", u.Class.Name)
	}
	fmt.Println("the MemHog thread took the whole \"JVM\" down with it —")
	fmt.Println("exactly the failure mode KaffeOS processes prevent.")
}
