// Quickstart: create a VM, run two isolated processes, observe per-process
// accounting, and kill one without harming the other.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/kaffeos"
)

const program = `
.class app/Main
.method main ()V static
.locals 2
.stack 3
	getstatic java/lang/System.out Ljava/io/PrintStream;
	ldc "hello from an isolated process"
	invokevirtual java/io/PrintStream.println (Ljava/lang/String;)V
# compute 10 factorial iteratively and print it
	iconst 1
	istore 0
	iconst 1
	istore 1
L0:	iload 1
	iconst 10
	if_icmpgt L1
	iload 0
	iload 1
	imul
	istore 0
	iinc 1 1
	goto L0
L1:	getstatic java/lang/System.out Ljava/io/PrintStream;
	iload 0
	invokevirtual java/io/PrintStream.printlnInt (I)V
	return
.end
.end`

const spinner = `
.class app/Spin
.method main ()V static
.locals 0
.stack 1
L0:	goto L0
.end
.end`

func main() {
	vm, err := kaffeos.New(kaffeos.Config{Stdout: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}

	// An ordinary process: runs to completion, memory fully reclaimed.
	worker, err := vm.NewProcess("worker", kaffeos.ProcessConfig{MemLimit: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	if err := worker.LoadSource(program); err != nil {
		log.Fatal(err)
	}
	if _, err := worker.Start("app/Main"); err != nil {
		log.Fatal(err)
	}

	// A runaway process: spins forever until we kill it.
	runaway, err := vm.NewProcess("runaway", kaffeos.ProcessConfig{MemLimit: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	if err := runaway.LoadSource(spinner); err != nil {
		log.Fatal(err)
	}
	if _, err := runaway.Start("app/Spin"); err != nil {
		log.Fatal(err)
	}

	// Give both some CPU (simulated cycles), then inspect.
	if err := vm.RunFor(5_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worker:  alive=%v cpu=%d cycles, mem=%d bytes\n",
		worker.Alive(), worker.CPUCycles(), worker.MemUse())
	fmt.Printf("runaway: alive=%v cpu=%d cycles, mem=%d bytes\n",
		runaway.Alive(), runaway.CPUCycles(), runaway.MemUse())

	// The runaway is uncooperative; kill it. Its heap merges into the
	// kernel heap and the next kernel GC reclaims everything.
	runaway.Kill()
	if err := vm.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after kill: runaway alive=%v, kernel heap=%d bytes\n",
		runaway.Alive(), vm.KernelHeapBytes())
}
