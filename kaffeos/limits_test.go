package kaffeos

import (
	"bytes"
	"testing"
)

const spinForever = `
.class app/Spin
.method main ()V static
.locals 0
.stack 1
L0:	goto L0
.end
.end`

func TestCPULimitViaFacade(t *testing.T) {
	vm, _ := New(Config{})
	p, err := vm.NewProcess("spin", ProcessConfig{CPULimit: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LoadSource(spinForever); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start("app/Spin"); err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Alive() {
		t.Fatal("CPU-limited process survived")
	}
	if p.CPUCycles() < 300_000 {
		t.Errorf("killed before the limit: %d cycles", p.CPUCycles())
	}
}

func TestIOLimitViaFacade(t *testing.T) {
	vm, _ := New(Config{})
	var out bytes.Buffer
	p, err := vm.NewProcess("noisy", ProcessConfig{IOLimit: 64, Stdout: &out})
	if err != nil {
		t.Fatal(err)
	}
	err = p.LoadSource(`
.class app/N
.method main ()V static
.locals 0
.stack 2
L0:	getstatic java/lang/System.out Ljava/io/PrintStream;
	ldc "0123456789"
	invokevirtual java/io/PrintStream.println (Ljava/lang/String;)V
	goto L0
.end
.end`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start("app/N"); err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Alive() {
		t.Fatal("IO-limited process survived")
	}
	if p.IOBytes() < 64 {
		t.Errorf("killed before the limit: %d bytes", p.IOBytes())
	}
	if out.Len() > 64 {
		t.Errorf("leaked %d bytes past the limit", out.Len())
	}
}

func TestRunForAndClock(t *testing.T) {
	vm, _ := New(Config{})
	p, _ := vm.NewProcess("spin", ProcessConfig{})
	if err := p.LoadSource(spinForever); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start("app/Spin"); err != nil {
		t.Fatal(err)
	}
	// Run 2 virtual milliseconds.
	if err := vm.RunFor(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !p.Alive() {
		t.Fatal("spinner died")
	}
	if vm.NowMillis() < 2 {
		t.Errorf("clock = %d ms", vm.NowMillis())
	}
	if len(vm.Processes()) != 1 {
		t.Errorf("processes = %d", len(vm.Processes()))
	}
	if vm.Processes()[0].Pid() != p.Pid() || vm.Processes()[0].Name() != "spin" {
		t.Error("process identity mismatch")
	}
	p.Kill()
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilAndGC(t *testing.T) {
	vm, _ := New(Config{})
	p, _ := vm.NewProcess("churn", ProcessConfig{MemLimit: 1 << 20})
	err := p.LoadSource(`
.class app/C
.method main ()V static
.locals 1
.stack 2
	iconst 0
	istore 0
L0:	ldc 128
	newarray [I
	pop
	iinc 0 1
	iload 0
	ldc 100
	if_icmplt L0
L1:	goto L1
.end
.end`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start("app/C"); err != nil {
		t.Fatal(err)
	}
	steps := 0
	if err := vm.RunUntil(func() bool { steps++; return steps > 50 }); err != nil {
		t.Fatal(err)
	}
	before := p.HeapBytes()
	p.GC()
	if p.HeapBytes() > before {
		t.Error("GC grew the heap")
	}
	if p.MemUse() == 0 {
		t.Error("no accounted memory for a live process")
	}
	p.Kill()
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.KernelHeapBytes() > 64<<10 {
		t.Errorf("kernel retains %d bytes", vm.KernelHeapBytes())
	}
}

func TestCoreEscapeHatch(t *testing.T) {
	vm, _ := New(Config{})
	if vm.Core() == nil {
		t.Fatal("Core() returned nil")
	}
	if vm.Core().KernelHeap == nil {
		t.Fatal("no kernel heap")
	}
}

func TestStartFallbackEntryPoints(t *testing.T) {
	vm, _ := New(Config{})
	p, _ := vm.NewProcess("r", ProcessConfig{})
	err := p.LoadSource(`
.class app/R
.method run ()I static
.locals 0
.stack 1
	iconst 9
	ireturn
.end
.end`)
	if err != nil {
		t.Fatal(err)
	}
	th, err := p.Start("app/R") // finds run()I
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if th.Result() != 9 {
		t.Errorf("result = %d", th.Result())
	}
	p2, _ := vm.NewProcess("none", ProcessConfig{})
	if err := p2.LoadSource(".class app/None\n.end"); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Start("app/None"); err == nil {
		t.Error("Start found an entry point in an empty class")
	}
}
