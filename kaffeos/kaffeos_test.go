package kaffeos

import (
	"bytes"
	"strings"
	"testing"
)

const addSrc = `
.class app/Add
.method main ()I static
.locals 0
.stack 2
	iconst 40
	iconst 2
	iadd
	ireturn
.end
.end`

func TestQuickstart(t *testing.T) {
	vm, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := vm.NewProcess("calc", ProcessConfig{MemLimit: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LoadSource(addSrc); err != nil {
		t.Fatal(err)
	}
	th, err := p.Start("app/Add")
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if !th.Done() || th.Result() != 42 {
		t.Fatalf("result = %d, done = %v", th.Result(), th.Done())
	}
	if !p.Exited() {
		t.Errorf("process did not exit cleanly")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Engine: "warp-drive"}); err == nil {
		t.Error("bad engine accepted")
	}
	if _, err := New(Config{Barrier: "psychic"}); err == nil {
		t.Error("bad barrier accepted")
	}
	for _, e := range []Engine{Interp, JIT, JITOpt} {
		for _, b := range []WriteBarrier{NoWriteBarrier, HeapPointer, NoHeapPointer, FakeHeapPointer} {
			if _, err := New(Config{Engine: e, Barrier: b}); err != nil {
				t.Errorf("New(%s,%s): %v", e, b, err)
			}
		}
	}
}

func TestStdout(t *testing.T) {
	vm, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	p, err := vm.NewProcess("printer", ProcessConfig{Stdout: &out})
	if err != nil {
		t.Fatal(err)
	}
	err = p.LoadSource(`
.class app/P
.method main ()V static
.locals 0
.stack 2
	getstatic java/lang/System.out Ljava/io/PrintStream;
	ldc "printed"
	invokevirtual java/io/PrintStream.println (Ljava/lang/String;)V
	return
.end
.end`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start("app/P"); err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "printed\n" {
		t.Errorf("out = %q", got)
	}
}

func TestKillAndFailureClass(t *testing.T) {
	vm, _ := New(Config{})
	p, err := vm.NewProcess("hog", ProcessConfig{MemLimit: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	err = p.LoadSource(`
.class app/Hog
.static keep Ljava/util/Vector;
.method main ()V static
.locals 0
.stack 4
	new java/util/Vector
	dup
	invokespecial java/util/Vector.<init> ()V
	putstatic app/Hog.keep Ljava/util/Vector;
L0:	getstatic app/Hog.keep Ljava/util/Vector;
	ldc 512
	newarray [I
	invokevirtual java/util/Vector.add (Ljava/lang/Object;)V
	goto L0
.end
.end`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start("app/Hog"); err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Alive() {
		t.Fatal("hog survived")
	}
	if got := p.FailureClass(); got != "java/lang/OutOfMemoryError" {
		t.Errorf("failure class = %q", got)
	}
}

func TestStartMethodWithArgs(t *testing.T) {
	vm, _ := New(Config{Engine: JITOpt})
	p, err := vm.NewProcess("m", ProcessConfig{})
	if err != nil {
		t.Fatal(err)
	}
	err = p.LoadSource(`
.class app/M
.method twice (I)I static
.locals 1
.stack 2
	iload 0
	iconst 2
	imul
	ireturn
.end
.end`)
	if err != nil {
		t.Fatal(err)
	}
	th, err := p.StartMethod("app/M", "twice(I)I", 21)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if th.Result() != 42 {
		t.Errorf("result = %d", th.Result())
	}
}

func TestBadSourceRejected(t *testing.T) {
	vm, _ := New(Config{})
	p, _ := vm.NewProcess("bad", ProcessConfig{})
	if err := p.LoadSource("this is not assembly"); err == nil {
		t.Error("garbage source accepted")
	}
	err := p.LoadSource(".class a/B\n.method m ()V\npop\nreturn\n.end\n.end")
	if err == nil || !strings.Contains(err.Error(), "pops") {
		t.Errorf("unverifiable code accepted: %v", err)
	}
}

func TestRegisterProgramAndSyscallSpawn(t *testing.T) {
	vm, _ := New(Config{})
	if err := vm.RegisterProgram("worker", `
.class app/W
.method main ()V static
.locals 0
.stack 1
	return
.end
.end`); err != nil {
		t.Fatal(err)
	}
	p, _ := vm.NewProcess("parent", ProcessConfig{})
	err := p.LoadSource(`
.class app/Par
.method main ()I static
.locals 0
.stack 3
	ldc "worker"
	ldc "app/W"
	ldc 1024
	invokestatic kaffeos/Kernel.spawn (Ljava/lang/String;Ljava/lang/String;I)I
	ireturn
.end
.end`)
	if err != nil {
		t.Fatal(err)
	}
	th, err := p.Start("app/Par")
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if th.Result() <= 0 {
		t.Errorf("spawn returned %d", th.Result())
	}
}

func TestBarrierCounterVisible(t *testing.T) {
	vm, _ := New(Config{Barrier: HeapPointer})
	p, _ := vm.NewProcess("b", ProcessConfig{})
	err := p.LoadSource(`
.class app/B
.static hold Ljava/lang/Object;
.method main ()V static
.locals 0
.stack 2
	new java/lang/Object
	putstatic app/B.hold Ljava/lang/Object;
	return
.end
.end`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start("app/B"); err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.BarriersExecuted() == 0 {
		t.Error("no barriers counted")
	}
}
