// Package kaffeos is the public API of the KaffeOS reproduction: a Java-
// style virtual machine with an operating-system process model.
//
// A VM hosts isolated processes. Each process has its own garbage-
// collected heap under a hierarchical memory limit, its own class
// namespace and interned strings, and green threads whose CPU cycles —
// including garbage-collection time — are charged to it. Processes can be
// killed at any time without corrupting the system: their memory is fully
// reclaimed by merging their heap into the kernel heap. Processes
// communicate through frozen shared heaps, with every sharer charged the
// full size of what it holds.
//
// Programs are written in the textual bytecode accepted by the assembler
// (see package repro/internal/bytecode) and run against a miniature Java
// class library. The quickstart:
//
//	vm, _ := kaffeos.New(kaffeos.Config{})
//	p, _ := vm.NewProcess("hello", kaffeos.ProcessConfig{MemLimit: 1 << 20})
//	_ = p.LoadSource(src)
//	_, _ = p.Start("app/Main")
//	_ = vm.Run()
package kaffeos

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/audit"
	"repro/internal/barrier"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/interp"
	"repro/internal/telemetry"
)

// Engine names an execution engine.
type Engine string

// The three engines, spanning the paper's platform spectrum.
const (
	// Interp is the baseline switch interpreter (Kaffe99-class). Default.
	Interp Engine = "interp"
	// JIT is the closure-compiling engine (Kaffe00-class).
	JIT Engine = "jit"
	// JITOpt adds superoperator fusion and inline caches (commercial-JIT
	// class).
	JITOpt Engine = "jit-opt"
)

// WriteBarrier names a write-barrier implementation from the paper's §4.1.
type WriteBarrier string

const (
	// NoWriteBarrier disables cross-heap checking (unsafe baseline; only
	// sensible for benchmarking).
	NoWriteBarrier WriteBarrier = "NoWriteBarrier"
	// HeapPointer finds an object's heap from a header word (25 cycles,
	// +4 bytes per object).
	HeapPointer WriteBarrier = "HeapPointer"
	// NoHeapPointer finds it from the page table (41 cycles, no space
	// cost). The default, as shipped in KaffeOS.
	NoHeapPointer WriteBarrier = "NoHeapPointer"
	// FakeHeapPointer is NoHeapPointer plus 4 bytes of padding, isolating
	// the space cost of HeapPointer.
	FakeHeapPointer WriteBarrier = "FakeHeapPointer"
)

// Config parameterizes a VM.
type Config struct {
	// Engine selects the execution engine (default Interp).
	Engine Engine
	// Barrier selects the write barrier (default NoHeapPointer).
	Barrier WriteBarrier
	// TotalMemory is the whole VM's memory budget (default 256 MiB).
	TotalMemory uint64
	// KernelMemory is reserved for the kernel heap (default 32 MiB).
	KernelMemory uint64
	// GCWorkers bounds the pool used to collect independent process heaps
	// concurrently (0 = GOMAXPROCS).
	GCWorkers int
	// Stdout receives process output by default.
	Stdout io.Writer
	// Faults, when non-empty, arms the deterministic fault-injection plane
	// with a plan spec such as "seed=7,heap.alloc=0.01,sched.kill=@50" or
	// "all=0.005" (see repro/internal/faults for the grammar). Injected
	// faults surface only through paths real failures use — allocation
	// failures, segmentation violations, kills at safepoints — so the VM
	// must stay fully consistent under them (verify with Audit). Empty
	// disables injection at zero cost.
	Faults string
	// MemBudget, when nonzero, turns on the MemBalancer memory controller:
	// the budget is periodically redistributed across all process memlimits
	// in proportion to √(live × allocation-rate), instead of every process
	// keeping its static MemLimit ceiling.
	MemBudget uint64
	// MemBalInterval is the controller period in virtual cycles
	// (default 500,000 = 1 virtual ms). Only meaningful with MemBudget.
	MemBalInterval uint64
	// CodeCache, with a compiling engine, shares JIT-compiled code across
	// processes: one immutable artifact per (module content, engine
	// configuration) pair, each sharing process charged the artifact's
	// full size against its memlimit. No-op for interpreter engines.
	CodeCache bool
}

// ProcessConfig parameterizes process creation.
type ProcessConfig struct {
	// MemLimit caps the process' total memory (default 16 MiB).
	MemLimit uint64
	// Reserve makes the limit a hard reservation, set aside up front.
	Reserve bool
	// CPULimit, when nonzero, kills the process after it has consumed
	// this many simulated cycles (500,000 cycles = 1 virtual ms).
	CPULimit uint64
	// IOLimit, when nonzero, kills the process after it has written this
	// many bytes to its output stream.
	IOLimit uint64
	// Stdout overrides the VM default for this process.
	Stdout io.Writer
	// Seed seeds the process' deterministic random source.
	Seed int64
}

// VM is a KaffeOS virtual machine.
type VM struct {
	inner *core.VM
}

// New creates a VM.
func New(cfg Config) (*VM, error) {
	var bar barrier.Barrier = barrier.NoHeapPointer
	if cfg.Barrier != "" {
		b, ok := barrier.ByName(string(cfg.Barrier))
		if !ok {
			return nil, fmt.Errorf("kaffeos: unknown write barrier %q", cfg.Barrier)
		}
		bar = b
	}
	eng := core.EngineInterp
	switch cfg.Engine {
	case "", Interp:
	case JIT:
		eng = core.EngineJIT
	case JITOpt:
		eng = core.EngineJITOpt
	default:
		return nil, fmt.Errorf("kaffeos: unknown engine %q", cfg.Engine)
	}
	var plane *faults.Plane
	if cfg.Faults != "" {
		plan, perr := faults.ParsePlan(cfg.Faults)
		if perr != nil {
			return nil, fmt.Errorf("kaffeos: %w", perr)
		}
		plane = faults.NewPlane(plan)
	}
	inner, err := core.NewVM(core.Config{
		Engine:         eng,
		Barrier:        bar,
		TotalMemory:    cfg.TotalMemory,
		KernelMemory:   cfg.KernelMemory,
		GCWorkers:      cfg.GCWorkers,
		Stdout:         cfg.Stdout,
		Faults:         plane,
		MemBudget:      cfg.MemBudget,
		MemBalInterval: cfg.MemBalInterval,
		CodeCache:      cfg.CodeCache,
	})
	if err != nil {
		return nil, err
	}
	return &VM{inner: inner}, nil
}

// Core exposes the underlying VM for advanced use (benchmark harnesses).
func (vm *VM) Core() *core.VM { return vm.inner }

// NewProcess creates an isolated process.
func (vm *VM) NewProcess(name string, cfg ProcessConfig) (*Process, error) {
	p, err := vm.inner.NewProcess(name, core.ProcessOptions{
		MemLimit:  cfg.MemLimit,
		HardLimit: cfg.Reserve,
		CPULimit:  cfg.CPULimit,
		IOLimit:   cfg.IOLimit,
		Out:       cfg.Stdout,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Process{inner: p}, nil
}

// RegisterProgram makes an assembled module spawnable by name through the
// kaffeos/Kernel.spawn system call.
func (vm *VM) RegisterProgram(name, source string) error {
	m, err := bytecode.Assemble(source)
	if err != nil {
		return err
	}
	vm.inner.RegisterProgram(name, m)
	return nil
}

// Run drives the scheduler until every non-daemon thread exits.
func (vm *VM) Run() error { return vm.inner.Run(0) }

// RunFor drives the scheduler for at most the given number of simulated
// CPU cycles (500,000 cycles = 1 virtual millisecond).
func (vm *VM) RunFor(cycles uint64) error { return vm.inner.Run(cycles) }

// RunUntil drives the scheduler until cond reports true.
func (vm *VM) RunUntil(cond func() bool) error { return vm.inner.RunUntil(cond) }

// NowMillis reports the virtual clock.
func (vm *VM) NowMillis() uint64 { return vm.inner.Sched.NowMillis() }

// Telemetry exposes the VM's telemetry hub: the always-on metrics
// registry plus the opt-in event tracer. See package
// repro/internal/telemetry for the event and metric taxonomy.
func (vm *VM) Telemetry() *telemetry.Hub { return vm.inner.Tel }

// SetTracing switches event tracing on or off. Metrics accumulate either
// way; the trace ring fills only while tracing is on.
func (vm *VM) SetTracing(on bool) { vm.inner.Tel.SetTracing(on) }

// Snapshot captures a point-in-time view of every process (reclaimed ones
// included) plus kernel totals. Safe to call from any goroutine.
func (vm *VM) Snapshot() telemetry.Snapshot { return vm.inner.Snapshot() }

// GCAll collects every live process heap on the VM's GC worker pool
// (Config.GCWorkers wide), then the kernel heap. It must be called
// between Run calls, while no thread executes.
func (vm *VM) GCAll() { vm.inner.CollectAll() }

// ServeTelemetry starts an HTTP introspection endpoint on addr (":0"
// picks a free port) and returns the bound address. Routes: /procs
// (JSON snapshot), /metrics (JSON metric dump), /trace (JSON lines),
// /ps (plain-text table).
func (vm *VM) ServeTelemetry(addr string) (string, error) {
	return vm.inner.Tel.Serve(addr, vm.inner.Snapshot)
}

// Audit re-derives the kernel's accounting books from a globally
// consistent snapshot — heaps, entry/exit items, the memlimit tree, the
// page table, and shared-heap charges — and reports every invariant that
// does not hold. graph additionally checks the object graph (cross-heap
// legality, exit-item backing, no dangling references) and requires the
// scheduler to be idle. A healthy VM reports no violations no matter what
// the fault plane has injected.
func (vm *VM) Audit(graph bool) *audit.Report { return vm.inner.Audit(graph) }

// FaultSummary renders the fault plane's per-site hit/fire counters, or ""
// when injection is disabled.
func (vm *VM) FaultSummary() string {
	if vm.inner.Cfg.Faults == nil {
		return ""
	}
	return vm.inner.Cfg.Faults.Summary()
}

// KernelHeapBytes reports live bytes on the kernel heap.
func (vm *VM) KernelHeapBytes() uint64 { return vm.inner.KernelHeap.Bytes() }

// BarriersExecuted reports the number of write-barrier checks performed.
func (vm *VM) BarriersExecuted() uint64 { return vm.inner.Stats.Executed.Load() }

// Processes lists live processes.
func (vm *VM) Processes() []*Process {
	inner := vm.inner.Processes()
	out := make([]*Process, len(inner))
	for i, p := range inner {
		out[i] = &Process{inner: p}
	}
	return out
}

// Checkpoint freezes a warmed, quiescent process (loaded modules, run
// clinits, no live threads) into an immutable template. The origin keeps
// running — or can be killed — independently; the template stands on its
// own until Release.
func (vm *VM) Checkpoint(p *Process, name string) (*Template, error) {
	tpl, err := vm.inner.Checkpoint(p.inner, name)
	if err != nil {
		return nil, err
	}
	return &Template{inner: tpl, vm: vm}, nil
}

// Templates lists live templates.
func (vm *VM) Templates() []*Template {
	inner := vm.inner.Templates()
	out := make([]*Template, len(inner))
	for i, tpl := range inner {
		out[i] = &Template{inner: tpl, vm: vm}
	}
	return out
}

// Template is a frozen process image: the heap snapshot, loaded classes
// and initialized statics of a checkpointed process. Fork stamps out
// fresh, fully isolated processes from it without re-running class
// initialization — the warmup is paid once, at checkpoint time.
type Template struct {
	inner *core.Template
	vm    *VM
}

// Pid reports the template's id (templates share the pid space with
// processes; `kaffeos ps` shows them in state "template").
func (t *Template) Pid() int32 { return int32(t.inner.ID) }

// Name reports the template name.
func (t *Template) Name() string { return t.inner.Name }

// Bytes reports the frozen image's heap size — also exactly what every
// fork charges its clone's memory limit up front.
func (t *Template) Bytes() uint64 { return t.inner.Bytes() }

// Fork stamps out a new isolated process from the template: new pid,
// fresh memlimit charged in full for the copied image, own class
// namespace bound to the copied statics. The clone starts quiescent;
// Start/StartMethod run code in it like any other process.
func (t *Template) Fork(name string, cfg ProcessConfig) (*Process, error) {
	p, err := t.inner.Fork(name, core.ProcessOptions{
		MemLimit:  cfg.MemLimit,
		HardLimit: cfg.Reserve,
		CPULimit:  cfg.CPULimit,
		IOLimit:   cfg.IOLimit,
		Out:       cfg.Stdout,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Process{inner: p}, nil
}

// Release destroys the template and returns every byte it held.
// Idempotent; forked processes are unaffected.
func (t *Template) Release() error { return t.inner.Release() }

// Process is one isolated KaffeOS process.
type Process struct {
	inner *core.Process
}

// Pid reports the process id.
func (p *Process) Pid() int32 { return int32(p.inner.ID) }

// Name reports the process name.
func (p *Process) Name() string { return p.inner.Name }

// LoadSource assembles and loads a program into the process namespace.
func (p *Process) LoadSource(src string) error {
	m, err := bytecode.Assemble(src)
	if err != nil {
		return err
	}
	return p.inner.Load(m)
}

// LoadModule loads a pre-assembled module.
func (p *Process) LoadModule(m *bytecode.Module) error { return p.inner.Load(m) }

// Start spawns a thread running the static, argumentless main()V (or
// main()I) of the given class.
func (p *Process) Start(mainClass string) (*Thread, error) {
	for _, key := range []string{"main()V", "main()I", "run()I", "run()V"} {
		th, err := p.inner.Spawn(mainClass, key)
		if err == nil {
			return &Thread{inner: th}, nil
		}
	}
	return nil, fmt.Errorf("kaffeos: %s has no runnable entry point (main()V/main()I/run()I/run()V)", mainClass)
}

// StartMethod spawns a thread on an explicit method key, e.g. "work(I)I".
func (p *Process) StartMethod(cls, methodKey string, args ...int64) (*Thread, error) {
	slots := make([]interp.Slot, len(args))
	for i, a := range args {
		slots[i] = interp.IntSlot(a)
	}
	th, err := p.inner.Spawn(cls, methodKey, slots...)
	if err != nil {
		return nil, err
	}
	return &Thread{inner: th}, nil
}

// Kill terminates the process at the next safepoint of each of its
// threads; kernel-mode sections complete first. Memory is fully reclaimed.
func (p *Process) Kill() { p.inner.Kill(errors.New("killed")) }

// Alive reports whether the process is still running.
func (p *Process) Alive() bool { return p.inner.State() == core.ProcRunning }

// Exited reports whether the process ended normally.
func (p *Process) Exited() bool {
	return p.inner.State() == core.ProcReclaimed && p.inner.ExitError() == nil && p.inner.Uncaught() == nil
}

// FailureClass reports the class name of the uncaught throwable that
// killed the process, or "".
func (p *Process) FailureClass() string {
	if u := p.inner.Uncaught(); u != nil {
		return u.Class.Name
	}
	return ""
}

// MemUse reports accounted bytes (heap + shared-heap charges + metadata).
func (p *Process) MemUse() uint64 { return p.inner.MemUse() }

// HeapBytes reports live heap bytes.
func (p *Process) HeapBytes() uint64 { return p.inner.HeapBytes() }

// CPUCycles reports simulated cycles charged to the process, including
// collection of its heap.
func (p *Process) CPUCycles() uint64 { return p.inner.CPUCycles() }

// IOBytes reports bytes the process has written to its output stream.
func (p *Process) IOBytes() uint64 { return p.inner.IOBytes() }

// GC forces a collection of the process heap.
func (p *Process) GC() { p.inner.Collect() }

// Thread is a green thread.
type Thread struct {
	inner *interp.Thread
}

// Done reports whether the thread has finished or been killed.
func (t *Thread) Done() bool { return !t.inner.Alive() }

// Result returns the thread's integer return value (entry methods
// returning I).
func (t *Thread) Result() int64 { return t.inner.Result.I }

// Err reports the error that killed the thread, if any.
func (t *Thread) Err() error { return t.inner.Err }
