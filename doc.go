// Package repro is a from-scratch Go reproduction of "Processes in
// KaffeOS: Isolation, Resource Management, and Sharing in Java" (Back,
// Hsieh, Lepreau — Univ. of Utah; OSDI 2000 / TR UUCS-00-010).
//
// The public API lives in repro/kaffeos; the paper's subsystems live under
// repro/internal (see DESIGN.md for the full inventory); the benchmark
// harness that regenerates every table and figure of the paper's
// evaluation is in bench_test.go and the cmd/specbench and cmd/servbench
// tools (see EXPERIMENTS.md for results).
package repro
