package repro

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls out.
//
//	BenchmarkFig3/...        Figure 3  — workloads across platforms (wall time)
//	BenchmarkTable1Counts    Table 1   — barriers executed per workload
//	BenchmarkBarrierMicro/.. §4.1      — cost of one barrier check
//	BenchmarkFig4Simulation  Figure 4  — servlet scaling curves (fluid model)
//	BenchmarkServletEngine   §4.2      — the real-VM servlet engine
//	BenchmarkAblation*                 — exception dispatch, locking,
//	                                     GC separation, engines, memlimits,
//	                                     process lifecycle
//
// Regenerate the full paper-style tables with:
//
//	go run ./cmd/specbench -experiment fig3|table1|overhead|classes
//	go run ./cmd/servbench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/barrier"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/jserv"
	"repro/internal/membal"
	"repro/internal/memlimit"
	"repro/internal/object"
	"repro/internal/serve"
	"repro/internal/spec"
	"repro/internal/telemetry"
	"repro/internal/vmaddr"
)

// BenchmarkFig3 runs each workload on each platform; b.N full runs each.
// This regenerates Figure 3's data as wall time per (platform, workload).
func BenchmarkFig3(b *testing.B) {
	for _, p := range spec.Platforms() {
		for _, w := range spec.All() {
			b.Run(p.Name+"/"+w.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := spec.Run(w, p)
					if err != nil {
						b.Fatal(err)
					}
					if res.Checksum != w.Checksum {
						b.Fatal("checksum mismatch")
					}
				}
			})
		}
	}
}

// BenchmarkTable1Counts reports the write barriers each workload executes
// (Table 1's first column) as a benchmark metric.
func BenchmarkTable1Counts(b *testing.B) {
	p, _ := spec.PlatformByName("KaffeOS-NoHeapPointer")
	for _, w := range spec.All() {
		b.Run(w.Name, func(b *testing.B) {
			var barriers uint64
			for i := 0; i < b.N; i++ {
				res, err := spec.Run(w, p)
				if err != nil {
					b.Fatal(err)
				}
				barriers = res.Barriers
			}
			b.ReportMetric(float64(barriers), "barriers")
			b.ReportMetric(float64(barriers*41), "barrier-cycles@41")
		})
	}
}

// benchWorld builds the minimal heap world for barrier microbenchmarks.
func benchWorld(b *testing.B, bar barrier.Barrier) (*heap.Registry, *heap.Heap, *object.Object, *object.Object) {
	b.Helper()
	space := vmaddr.NewSpace()
	reg := heap.NewRegistry(space, heap.Config{HeaderExtra: bar.HeaderExtra()})
	root := memlimit.NewRoot("root", memlimit.Unlimited)
	user := reg.NewHeap(heap.KindUser, "user", root.MustChild("user", memlimit.Unlimited, false))
	mod := bytecode.MustAssemble(".class java/lang/Object\n.end\n.class t/N\n.field next Lt/N;\n.end")
	objDef, _ := mod.Class("java/lang/Object")
	objC, err := object.NewClass(objDef, nil, "b", true)
	if err != nil {
		b.Fatal(err)
	}
	nDef, _ := mod.Class("t/N")
	nC, err := object.NewClass(nDef, objC, "b", false)
	if err != nil {
		b.Fatal(err)
	}
	holder, err := user.Alloc(nC)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := user.Alloc(nC)
	if err != nil {
		b.Fatal(err)
	}
	return reg, user, holder, ref
}

// BenchmarkBarrierMicro measures one intra-heap barrier check per
// implementation (§4.1's 25-vs-41-cycle comparison, in host nanoseconds).
func BenchmarkBarrierMicro(b *testing.B) {
	for _, bar := range barrier.All() {
		b.Run(bar.Name(), func(b *testing.B) {
			reg, _, holder, ref := benchWorld(b, bar)
			var st barrier.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bar.Write(reg, holder, ref, false, &st); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(bar.CheckCost()), "model-cycles")
		})
	}
}

// BenchmarkFig4Simulation regenerates all six Figure 4 curves.
func BenchmarkFig4Simulation(b *testing.B) {
	p := jserv.DefaultParams()
	for i := 0; i < b.N; i++ {
		curves := jserv.Figure4(p)
		if len(curves) != 6 {
			b.Fatal("missing curves")
		}
	}
}

// BenchmarkServletEngine measures the real-VM servlet engine with and
// without a MemHog (the §4.2 isolation property as a benchmark).
func BenchmarkServletEngine(b *testing.B) {
	for _, hog := range []bool{false, true} {
		name := "clean"
		if hog {
			name = "memhog"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vm, err := core.NewVM(core.Config{Engine: core.EngineJITOpt})
				if err != nil {
					b.Fatal(err)
				}
				eng := jserv.NewEngine(vm)
				for z := 0; z < 2; z++ {
					if _, err := eng.AddServlet(fmt.Sprintf("z%d", z), 2048); err != nil {
						b.Fatal(err)
					}
				}
				if hog {
					if _, err := eng.AddMemHog("hog", 256); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := eng.ServeUntil(30, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// exceptionWorkload raises and catches n exceptions across a call frame.
const exceptionWorkload = `
.class t/E
.method thrower ()V static
.locals 0
.stack 2
	new java/lang/RuntimeException
	athrow
.end
.method run (I)I static
.locals 2
.stack 2
	iconst 0
	istore 1
L0:	iload 0
	ifle OUT
T0:	invokestatic t/E.thrower ()V
	goto NEXT
T1:	pop
	iinc 1 1
NEXT:	iinc 0 -1
	goto L0
.catch java/lang/RuntimeException T0 T1 T1
OUT:	iload 1
	ireturn
.end
.end`

// BenchmarkAblationExceptions compares fast (table) vs slow (Kaffe99-style
// walking) exception dispatch — the improvement that "shows up strongly in
// jack".
func BenchmarkAblationExceptions(b *testing.B) {
	for _, fast := range []bool{true, false} {
		name := "fast"
		if !fast {
			name = "slow"
		}
		b.Run(name, func(b *testing.B) {
			fe := fast
			vm, err := core.NewVM(core.Config{FastExceptions: &fe})
			if err != nil {
				b.Fatal(err)
			}
			p, err := vm.NewProcess("e", core.ProcessOptions{MemLimit: 32 << 20})
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Load(bytecode.MustAssemble(exceptionWorkload)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th, err := p.Spawn("t/E", "run(I)I", interp.IntSlot(2000))
				if err != nil {
					b.Fatal(err)
				}
				if err := vm.Run(0); err != nil {
					b.Fatal(err)
				}
				if th.Result.I != 2000 {
					b.Fatalf("caught %d", th.Result.I)
				}
				b.StopTimer()
				p, err = vm.NewProcess("e", core.ProcessOptions{MemLimit: 32 << 20})
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Load(bytecode.MustAssemble(exceptionWorkload)); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

const lockWorkload = `
.class t/L
.method run (I)I static
.locals 2
.stack 2
	new java/lang/Object
	astore 1
L0:	iload 0
	ifle OUT
	aload 1
	monitorenter
	aload 1
	monitorexit
	iinc 0 -1
	goto L0
OUT:	iconst 1
	ireturn
.end
.end`

// BenchmarkAblationLocks compares thin (header-word) vs heavyweight
// (monitor-record) locking — Kaffe00's "lightweight locking".
func BenchmarkAblationLocks(b *testing.B) {
	for _, thin := range []bool{true, false} {
		name := "thin"
		if !thin {
			name = "heavy"
		}
		b.Run(name, func(b *testing.B) {
			vm, err := core.NewVM(core.Config{ThinLocks: thin})
			if err != nil {
				b.Fatal(err)
			}
			mod := bytecode.MustAssemble(lockWorkload)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p, err := vm.NewProcess("l", core.ProcessOptions{MemLimit: 32 << 20})
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Load(mod); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				th, err := p.Spawn("t/L", "run(I)I", interp.IntSlot(5000))
				if err != nil {
					b.Fatal(err)
				}
				if err := vm.RunUntil(func() bool { return !th.Alive() }); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(th.Cycles), "sim-cycles")
			}
		})
	}
}

// BenchmarkAblationGCSeparation demonstrates why per-process heaps matter
// for GC cost: collecting a small process heap is independent of how much
// the kernel (or anyone else) has allocated.
func BenchmarkAblationGCSeparation(b *testing.B) {
	build := func(b *testing.B, kernelObjects int) (*core.VM, *core.Process) {
		vm, err := core.NewVM(core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		objC, err := vm.Shared.Class("java/util/ListNode")
		if err != nil {
			b.Fatal(err)
		}
		// Keep kernel objects alive via a chain from a shared static.
		var prev *object.Object
		for i := 0; i < kernelObjects; i++ {
			o, err := vm.KernelHeap.Alloc(objC)
			if err != nil {
				b.Fatal(err)
			}
			o.SetRef(1, prev)
			prev = o
		}
		sys, err := vm.Shared.Class("java/lang/Thread")
		if err != nil {
			b.Fatal(err)
		}
		if sys.Statics == nil && prev != nil {
			// Pin the chain through an entry item instead.
			if err := vm.KernelHeap.RecordCrossRef(prev); err != nil {
				b.Fatal(err)
			}
		}
		p, err := vm.NewProcess("small", core.ProcessOptions{MemLimit: 8 << 20})
		if err != nil {
			b.Fatal(err)
		}
		cls, err := p.Loader.Class("java/util/ListNode")
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if _, err := p.Heap.Alloc(cls); err != nil {
				b.Fatal(err)
			}
		}
		return vm, p
	}
	for _, kernelObjs := range []int{0, 50_000} {
		b.Run(fmt.Sprintf("kernelObjs=%d", kernelObjs), func(b *testing.B) {
			_, p := build(b, kernelObjs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Collect()
			}
		})
	}
}

// BenchmarkAblationEngines runs compress under each engine — the Figure 3
// platform spread in miniature.
func BenchmarkAblationEngines(b *testing.B) {
	w := spec.Compress()
	for _, cfg := range []struct {
		name string
		kind core.EngineKind
	}{
		{"interp-spill", core.EngineInterpSpill},
		{"interp", core.EngineInterp},
		{"jit", core.EngineJIT},
		{"jit-opt", core.EngineJITOpt},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			p := spec.Platform{Name: cfg.name, Engine: cfg.kind, FastExceptions: true, ThinLocks: true, Barrier: barrier.NoBarrier}
			for i := 0; i < b.N; i++ {
				if _, err := spec.Run(w, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMemlimits compares allocation through deep soft
// hierarchies vs a flat hard reservation.
func BenchmarkAblationMemlimits(b *testing.B) {
	for _, hard := range []bool{false, true} {
		name := "soft-chain"
		if hard {
			name = "hard-reservation"
		}
		b.Run(name, func(b *testing.B) {
			root := memlimit.NewRoot("root", memlimit.Unlimited)
			l1 := root.MustChild("l1", memlimit.Unlimited, hard)
			l2 := l1.MustChild("l2", memlimit.Unlimited, false)
			l3 := l2.MustChild("l3", memlimit.Unlimited, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l3.Debit(64); err != nil {
					b.Fatal(err)
				}
				l3.Credit(64)
			}
		})
	}
}

// BenchmarkAblationStackScanCrosstalk quantifies the "GC crosstalk" the
// paper accepts as the price of direct sharing (§2): every thread's stack
// can hold kernel- and shared-heap references, so the kernel collector
// scans all of them — and "a process could create many threads in an
// effort to get the system to scan them all". Process-local collections
// stay immune (their roots are their own threads only); the kernel
// collection degrades with the neighbour's thread count.
func BenchmarkAblationStackScanCrosstalk(b *testing.B) {
	for _, threads := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("neighbourThreads=%d", threads), func(b *testing.B) {
			vm, err := core.NewVM(core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			mod := bytecode.MustAssemble(`
.class t/Spin
.method main ()V static
.locals 8
.stack 1
L0:	goto L0
.end
.end`)
			noisy, err := vm.NewProcess("noisy", core.ProcessOptions{MemLimit: 32 << 20})
			if err != nil {
				b.Fatal(err)
			}
			if err := noisy.Load(mod); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < threads; i++ {
				if _, err := noisy.Spawn("t/Spin", "main()V"); err != nil {
					b.Fatal(err)
				}
			}
			victim, err := vm.NewProcess("victim", core.ProcessOptions{MemLimit: 8 << 20})
			if err != nil {
				b.Fatal(err)
			}
			cls, err := victim.Loader.Class("java/util/ListNode")
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				if _, err := victim.Heap.Alloc(cls); err != nil {
					b.Fatal(err)
				}
			}
			b.Run("process-gc", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					victim.Collect()
				}
			})
			b.Run("kernel-gc", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					vm.CollectKernel()
				}
			})
		})
	}
}

// benchNodeClass builds the two-class world (Object + a linkable node)
// used by the GC scaling benchmarks.
func benchNodeClass(b *testing.B) *object.Class {
	b.Helper()
	mod := bytecode.MustAssemble(".class java/lang/Object\n.end\n.class t/N\n.field next Lt/N;\n.end")
	objDef, _ := mod.Class("java/lang/Object")
	objC, err := object.NewClass(objDef, nil, "b", true)
	if err != nil {
		b.Fatal(err)
	}
	nDef, _ := mod.Class("t/N")
	nC, err := object.NewClass(nDef, objC, "b", false)
	if err != nil {
		b.Fatal(err)
	}
	return nC
}

// buildGCBenchHeaps populates n user heaps with identical live graphs
// (chains reachable from explicit roots) so every collection marks the
// same amount of work, and returns ready-made collection requests.
func buildGCBenchHeaps(b *testing.B, n, objsPerHeap int) (*heap.Registry, []heap.CollectRequest) {
	b.Helper()
	space := vmaddr.NewSpace()
	reg := heap.NewRegistry(space, heap.Config{})
	root := memlimit.NewRoot("root", memlimit.Unlimited)
	nC := benchNodeClass(b)
	reqs := make([]heap.CollectRequest, n)
	for i := 0; i < n; i++ {
		h := reg.NewHeap(heap.KindUser, fmt.Sprintf("h%d", i), root.MustChild(fmt.Sprintf("h%d", i), memlimit.Unlimited, false))
		var keep []*object.Object
		var prev *object.Object
		for j := 0; j < objsPerHeap; j++ {
			o, err := h.Alloc(nC)
			if err != nil {
				b.Fatal(err)
			}
			o.SetRef(0, prev)
			prev = o
			if j%32 == 31 {
				keep = append(keep, o) // chain head: marks the 32 below it
				prev = nil
			}
		}
		roots := keep
		reqs[i] = heap.CollectRequest{Heap: h, Roots: func(visit func(*object.Object)) {
			for _, o := range roots {
				visit(o)
			}
		}}
	}
	return reg, reqs
}

// BenchmarkGCParallel measures collecting n fully live process heaps
// serially vs on the CollectConcurrent worker pool. Per-heap collections
// share no locks except short crossMu windows, so on a multi-core host
// the parallel variant scales with GOMAXPROCS; per-op time is for
// collecting ALL n heaps once.
func BenchmarkGCParallel(b *testing.B) {
	const objsPerHeap = 2000
	for _, n := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("heaps=%d/serial", n), func(b *testing.B) {
			_, reqs := buildGCBenchHeaps(b, n, objsPerHeap)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range reqs {
					r.Heap.Collect(r.Roots)
				}
			}
		})
		b.Run(fmt.Sprintf("heaps=%d/parallel", n), func(b *testing.B) {
			reg, reqs := buildGCBenchHeaps(b, n, objsPerHeap)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reg.CollectConcurrent(reqs, 0)
			}
		})
	}
}

// BenchmarkAllocParallel measures allocation throughput from concurrent
// goroutines, each owning a heap under a shared memlimit root — the
// contention the per-heap lease exists to absorb. "nolease" disables the
// fast path (every allocation debits the shared limit tree); per-op time
// is one allocation. Goroutines collect their heap periodically so the
// workload stays bounded.
func BenchmarkAllocParallel(b *testing.B) {
	nC := benchNodeClass(b)
	for _, cfg := range []struct {
		name  string
		batch int
	}{{"lease", 0}, {"nolease", -1}} {
		for _, workers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", cfg.name, workers), func(b *testing.B) {
				space := vmaddr.NewSpace()
				reg := heap.NewRegistry(space, heap.Config{LeaseBatch: cfg.batch})
				root := memlimit.NewRoot("root", 1<<40)
				heaps := make([]*heap.Heap, workers)
				for i := range heaps {
					heaps[i] = reg.NewHeap(heap.KindUser, fmt.Sprintf("h%d", i), root.MustChild(fmt.Sprintf("h%d", i), memlimit.Unlimited, false))
				}
				perG := b.N/workers + 1
				noRoots := func(func(*object.Object)) {}
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(h *heap.Heap) {
						defer wg.Done()
						for i := 0; i < perG; i++ {
							if _, err := h.Alloc(nC); err != nil {
								b.Error(err)
								return
							}
							if i%50_000 == 49_999 {
								h.Collect(noRoots)
							}
						}
					}(heaps[w])
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkSpanEmission prices the telemetry side of request tracing:
// "off" is the hot-path guard alone (one atomic load, the cost every
// accepted request pays when spans are disabled), "on" is the full
// finalization — mint an id, fill the ledger, record into the ring, and
// observe the five kernel phase histograms.
func BenchmarkSpanEmission(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			rec := telemetry.NewSpanRecorder(0)
			rec.SetEnabled(on)
			k := telemetry.NewHub(0).Reg.Kernel()
			queue := k.Histogram(telemetry.MSpanQueueNs)
			marshal := k.Histogram(telemetry.MSpanMarshalNs)
			exec := k.Histogram(telemetry.MSpanExecCycles)
			gc := k.Histogram(telemetry.MSpanGCCycles)
			total := k.Histogram(telemetry.MSpanTotalNs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !rec.Enabled() {
					continue
				}
				sp := telemetry.Span{
					ID:         rec.NextID(),
					Route:      "/bench",
					Pid:        1,
					Status:     200,
					QueueNs:    120,
					MarshalNs:  40,
					ExecCycles: 2000,
					GCCycles:   500,
					GCNs:       telemetry.CyclesToNs(500),
					Quanta:     2,
					TotalNs:    5000,
				}
				rec.Record(sp)
				queue.Observe(uint64(sp.QueueNs))
				marshal.Observe(uint64(sp.MarshalNs))
				exec.Observe(sp.ExecCycles)
				gc.Observe(sp.GCCycles)
				total.Observe(uint64(sp.TotalNs))
			}
		})
	}
}

// BenchmarkServeThroughput measures one request through the serving
// plane's engine path (admission, dispatch, execution, reply — no TCP),
// with span recording off and on. The off/on gap is the end-to-end cost
// of tracing; the gate holds the off variant to the baseline.
func BenchmarkServeThroughput(b *testing.B) {
	for _, spans := range []bool{false, true} {
		name := "spans-off"
		if spans {
			name = "spans-on"
		}
		b.Run(name, func(b *testing.B) {
			vm, err := core.NewVM(core.Config{Engine: core.EngineJITOpt})
			if err != nil {
				b.Fatal(err)
			}
			vm.Tel.Spans.SetEnabled(spans)
			srv, err := serve.New(vm, serve.Config{}, []serve.TenantConfig{{Route: "/b", WorkUnits: 20}})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := srv.Start("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			body := []byte("bench-payload")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if status, _ := srv.Do("/b", body); status != 200 {
					b.Fatalf("status %d", status)
				}
			}
			b.StopTimer()
			if err := srv.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkServeShardedThroughput measures the engine path on a sharded
// plane at 1/2/4 shards: concurrent callers spread over one tenant per
// shard slot, so with N shards up to N requests execute in parallel on N
// VMs. The shards-1 case is the old single-engine plane; the scaling gap
// to shards-4 is what the shard refactor buys on a multi-core host (on a
// single core the variants should roughly tie — the gate's host line
// records which case the baseline measured).
func BenchmarkServeShardedThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			tenants := make([]serve.TenantConfig, 4)
			routes := make([]string, len(tenants))
			for i := range tenants {
				routes[i] = fmt.Sprintf("/b%d", i)
				tenants[i] = serve.TenantConfig{Route: routes[i], WorkUnits: 20}
			}
			srv, err := serve.NewSharded(
				core.Config{Engine: core.EngineJITOpt},
				serve.Config{Shards: shards, Place: serve.LeastLoaded},
				tenants)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := srv.Start("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			body := []byte("bench-payload")
			var rr atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				route := routes[int(rr.Add(1)-1)%len(routes)]
				for pb.Next() {
					status, _ := srv.Do(route, body)
					if status != 200 && status != 503 {
						b.Errorf("status %d", status)
						return
					}
				}
			})
			b.StopTimer()
			if err := srv.Close(); err != nil {
				b.Fatal(err)
			}
			for i, vm := range srv.VMs() {
				if rep := vm.Audit(true); !rep.OK() {
					b.Fatalf("shard %d post-run audit failed:\n%s", i, rep)
				}
			}
		})
	}
}

// BenchmarkProcessLifecycle measures the full create → run → kill →
// reclaim cycle — the cost of the paper's process abstraction itself.
func BenchmarkProcessLifecycle(b *testing.B) {
	vm, err := core.NewVM(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	mod := bytecode.MustAssemble(`
.class t/P
.method main ()V static
.locals 0
.stack 1
L0:	goto L0
.end
.end`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := vm.NewProcess("cycle", core.ProcessOptions{MemLimit: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Load(mod); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Spawn("t/P", "main()V"); err != nil {
			b.Fatal(err)
		}
		if err := vm.Run(200_000); err != nil {
			b.Fatal(err)
		}
		p.Kill(nil)
		if err := vm.Run(0); err != nil {
			b.Fatal(err)
		}
		if p.State() != core.ProcReclaimed {
			b.Fatal("not reclaimed")
		}
	}
}

// BenchmarkInitColdStart prices bringing a warm-servlet process to life
// the slow way: a fresh process whose module load runs the expensive
// NetWarm <clinit> (a 4096-entry lookup table, ~260k interpreted loop
// iterations). Paired with BenchmarkForkColdStart below — their ratio is
// the zygote speedup the serving plane's template tenants buy; see
// `servbench -net -coldstart` for the end-to-end HTTP version.
func BenchmarkInitColdStart(b *testing.B) {
	vm, err := core.NewVM(core.Config{Engine: core.EngineJITOpt})
	if err != nil {
		b.Fatal(err)
	}
	mod := jserv.NetWarmModule()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := vm.NewProcess("cold", core.ProcessOptions{MemLimit: 8 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Load(mod); err != nil {
			b.Fatal(err)
		}
		p.Kill(nil)
		if err := vm.Run(0); err != nil {
			b.Fatal(err)
		}
		if p.State() != core.ProcReclaimed {
			b.Fatal("not reclaimed")
		}
	}
}

// BenchmarkForkColdStart prices the fast way: the same NetWarm warmup is
// paid once into a checkpointed template, then every incarnation is a
// Fork — a deep copy of the frozen heap into a fresh isolated process.
func BenchmarkForkColdStart(b *testing.B) {
	vm, err := core.NewVM(core.Config{Engine: core.EngineJITOpt})
	if err != nil {
		b.Fatal(err)
	}
	zygote, err := vm.NewProcess("zygote", core.ProcessOptions{MemLimit: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	if err := zygote.Load(jserv.NetWarmModule()); err != nil {
		b.Fatal(err)
	}
	tpl, err := vm.Checkpoint(zygote, "bench")
	if err != nil {
		b.Fatal(err)
	}
	zygote.Kill(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clone, err := tpl.Fork("clone", core.ProcessOptions{MemLimit: 8 << 20})
		if err != nil {
			b.Fatal(err)
		}
		clone.Kill(nil)
		if err := vm.Run(0); err != nil {
			b.Fatal(err)
		}
		if clone.State() != core.ProcReclaimed {
			b.Fatal("not reclaimed")
		}
	}
	b.StopTimer()
	if err := tpl.Release(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkColdStartSharedCode prices the other cold-start tax: JIT
// compilation. The NetWide servlet has no clinit — its startup cost is
// translating a wide method surface (~12k instructions) — so the A/B
// isolates what the shared code cache buys: with the cache off, every
// process compiles the module privately before it can answer; with the
// cache on, the first process compiles once into an immutable artifact
// and every later process attaches (pure cache hits) and just executes.
// The hit/miss counters land in the -benchmem baseline via ReportMetric.
func BenchmarkColdStartSharedCode(b *testing.B) {
	mod := jserv.NetWideModule()
	for _, cache := range []bool{false, true} {
		name := "cache=off"
		if cache {
			name = "cache=on"
		}
		b.Run(name, func(b *testing.B) {
			vm, err := core.NewVM(core.Config{Engine: core.EngineJITOpt, CodeCache: cache})
			if err != nil {
				b.Fatal(err)
			}
			// One unmeasured run: records the expected result and, on the
			// cache arm, pays the one-time compile-and-insert — the role
			// the first tenant (or a primer) plays in a serving fleet.
			run := func(i int) int64 {
				p, err := vm.NewProcess(fmt.Sprintf("wide%d", i), core.ProcessOptions{MemLimit: 8 << 20})
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Load(mod); err != nil {
					b.Fatal(err)
				}
				th, err := p.Spawn(jserv.NetWideClass, "selftest()I")
				if err != nil {
					b.Fatal(err)
				}
				if err := vm.Run(0); err != nil {
					b.Fatal(err)
				}
				if p.State() != core.ProcReclaimed {
					b.Fatal("not reclaimed")
				}
				return th.Result.I
			}
			want := run(-1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := run(i); got != want {
					b.Fatalf("selftest = %d, want %d", got, want)
				}
			}
			b.StopTimer()
			if cache {
				kernel := vm.Tel.Reg.Kernel()
				b.ReportMetric(float64(kernel.Counter(telemetry.MCodeHits).Value()), "cache-hits")
				b.ReportMetric(float64(kernel.Counter(telemetry.MCodeMisses).Value()), "cache-misses")
				vm.CodeMgr.EvictOrphans()
			}
			if rep := vm.Audit(true); !rep.OK() {
				b.Fatalf("post-bench audit failed:\n%s", rep)
			}
		})
	}
}

// BenchmarkMemBalRebalance prices one controller round: estimate every
// tenant's allocation rate, solve the square-root split of the budget,
// and apply the new limits through the memlimit tree. This runs on the
// engine goroutine between request quanta, so its cost is pure serving
// overhead; per-op time is one full round over all tenants.
func BenchmarkMemBalRebalance(b *testing.B) {
	for _, n := range []int{8, 64} {
		b.Run(fmt.Sprintf("tenants=%d", n), func(b *testing.B) {
			root := memlimit.NewRoot("root", memlimit.Unlimited)
			ctl := &membal.Controller{Budget: uint64(n) * (4 << 20)}
			targets := make([]membal.Target, n)
			for i := range targets {
				l := root.MustChild(fmt.Sprintf("t%d", i), 4<<20, false)
				live := uint64(256+(i%32)*64) << 10
				if err := l.Debit(live); err != nil {
					b.Fatal(err)
				}
				targets[i] = membal.Target{ID: int32(i), Limit: l, Live: live}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range targets {
					// Skewed allocation keeps the rate estimates (and thus
					// the split) changing every round.
					targets[j].AllocBytes += uint64(1+j%7) << 12
				}
				ctl.Rebalance(uint64(i+1)*100_000, targets)
			}
		})
	}
}

// BenchmarkServeOvercommit measures one request through an overcommitted
// plane — four tenants whose even-split share of the budget is tight —
// with static limits vs the memory controller redistributing the same
// budget. The controller's cost (rebalance rounds on the engine
// goroutine) and its benefit (fewer admission-pressure GCs) both land in
// the per-request time; the gate holds both variants.
func BenchmarkServeOvercommit(b *testing.B) {
	const budget = 4 << 20
	for _, controller := range []bool{false, true} {
		name := "static"
		if controller {
			name = "balanced"
		}
		b.Run(name, func(b *testing.B) {
			tenants := make([]serve.TenantConfig, 4)
			for i := range tenants {
				tenants[i] = serve.TenantConfig{
					Route:     fmt.Sprintf("/b%d", i),
					WorkUnits: 200,
					MemKB:     int(budget / 4 >> 10),
				}
			}
			cfg := serve.Config{}
			if controller {
				cfg.MemBudget = budget
			}
			srv, err := serve.NewSharded(
				core.Config{Engine: core.EngineJITOpt, TotalMemory: 32<<20 + budget},
				cfg, tenants)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := srv.Start("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			body := make([]byte, 8<<10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				status, _ := srv.Do(fmt.Sprintf("/b%d", i%4), body)
				if status != 200 && status != 503 {
					b.Fatalf("status %d", status)
				}
			}
			b.StopTimer()
			if err := srv.Close(); err != nil {
				b.Fatal(err)
			}
			for i, vm := range srv.VMs() {
				if rep := vm.Audit(true); !rep.OK() {
					b.Fatalf("shard %d post-run audit failed:\n%s", i, rep)
				}
			}
		})
	}
}
